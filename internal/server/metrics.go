package server

import (
	"strings"

	"sync/atomic"

	"viewstags/internal/obs"
)

// RouteMetrics holds one route's counters and its latency histogram.
// The counters are atomics (read with Load); Latency is an
// obs.Histogram whose Observe is allocation-free, so the middleware
// can record every request at load-test rates. Exemplars remembers the
// request id of the most recent observation in each latency bucket
// (also allocation-free), so a histogram spike links to a fetchable
// /debug/traces id.
type RouteMetrics struct {
	Requests  atomic.Int64
	Errors    atomic.Int64
	Latency   obs.Histogram
	Exemplars obs.Exemplars
}

// maxExemplarsPerRoute bounds the exemplars surfaced per route on both
// /metrics and /v1/stats: the slowest occupied buckets are what link a
// tail spike to a trace; deeper history belongs to the trace ring.
const maxExemplarsPerRoute = 4

// Metrics is the server's counter set: per-route request counters and
// log-bucket latency histograms, cheap enough to leave on at load-test
// rates. /v1/stats renders quantile summaries from the histograms and
// GET /metrics exposes the full buckets for scraping.
type Metrics struct {
	Predict RouteMetrics
	Ingest  RouteMetrics
	Place   RouteMetrics
	Preload RouteMetrics
	// Internal aggregates the shard-internal /internal/* routes the
	// cluster gateway drives, so shard operators can tell gateway
	// traffic from direct client traffic at a glance.
	Internal RouteMetrics
	Other    RouteMetrics

	InFlight atomic.Int64
	Rejected atomic.Int64
	// Predictions counts individual predictions served — a batch of k
	// adds k, so throughput comparisons across batch sizes stay honest.
	// (The write-path analogue, accepted events, is owned by the ingest
	// accumulator; the stats handler surfaces it from there.)
	Predictions atomic.Int64
}

// NewMetrics returns a zeroed counter set.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) route(path string) *RouteMetrics {
	switch path {
	case "/v1/predict":
		return &m.Predict
	case "/v1/ingest":
		return &m.Ingest
	case "/v1/place":
		return &m.Place
	case "/v1/preload":
		return &m.Preload
	default:
		if strings.HasPrefix(path, "/internal/") {
			return &m.Internal
		}
		return &m.Other
	}
}

// EachRoute visits every route bucket with its exposition label, in a
// fixed order — the iteration the /metrics renderers are built on.
func (m *Metrics) EachRoute(f func(name string, rm *RouteMetrics)) {
	f("predict", &m.Predict)
	f("ingest", &m.Ingest)
	f("place", &m.Place)
	f("preload", &m.Preload)
	f("internal", &m.Internal)
	f("other", &m.Other)
}

// RouteSnapshot is one route's counters at a point in time. MeanMs and
// the quantiles are all derived from the same histogram snapshot, so
// the two surfaces (/v1/stats and /metrics) can never disagree.
type RouteSnapshot struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// Exemplars are the slowest buckets' most recent request ids —
	// each one a /debug/traces/{id} lookup away from its spans.
	Exemplars []obs.BucketExemplar `json:"exemplars,omitempty"`
}

// Snapshot is the JSON shape of /v1/stats (wrapped with the ingest
// stream stats by the handler when the write path is enabled).
type Snapshot struct {
	Predict     RouteSnapshot `json:"predict"`
	Ingest      RouteSnapshot `json:"ingest"`
	Place       RouteSnapshot `json:"place"`
	Preload     RouteSnapshot `json:"preload"`
	Internal    RouteSnapshot `json:"internal"`
	Other       RouteSnapshot `json:"other"`
	InFlight    int64         `json:"in_flight"`
	Rejected    int64         `json:"rejected"`
	Predictions int64         `json:"predictions"`
	// Events mirrors the ingest accumulator's accepted-event count;
	// the handler fills it (the Metrics struct holds no copy).
	Events int64 `json:"events"`
}

func snapRoute(m *RouteMetrics) RouteSnapshot {
	s := RouteSnapshot{
		Requests: m.Requests.Load(),
		Errors:   m.Errors.Load(),
	}
	h := m.Latency.Snapshot()
	if h.Count > 0 {
		s.MeanMs = h.Mean() * 1e3
		s.P50Ms = h.Quantile(0.50) * 1e3
		s.P95Ms = h.Quantile(0.95) * 1e3
		s.P99Ms = h.Quantile(0.99) * 1e3
		s.Exemplars = m.Exemplars.Top(maxExemplarsPerRoute)
	}
	return s
}

// Snapshot captures all counters.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Predict:     snapRoute(&m.Predict),
		Ingest:      snapRoute(&m.Ingest),
		Place:       snapRoute(&m.Place),
		Preload:     snapRoute(&m.Preload),
		Internal:    snapRoute(&m.Internal),
		Other:       snapRoute(&m.Other),
		InFlight:    m.InFlight.Load(),
		Rejected:    m.Rejected.Load(),
		Predictions: m.Predictions.Load(),
	}
}

// WriteProm renders the request-level families onto an exposition —
// shared verbatim by the serve daemon's and the gateway's /metrics, so
// the route families line up across the tier.
func (m *Metrics) WriteProm(w *obs.TextWriter) {
	w.Counter("viewstags_requests_total", "Requests served, by route group.")
	w.Counter("viewstags_request_errors_total", "Requests answered with status >= 400, by route group.")
	w.HistogramFamily("viewstags_request_duration_seconds", "Request wall time by route group, measured inside the middleware.")
	m.EachRoute(func(name string, rm *RouteMetrics) {
		labels := []obs.Label{{Name: "route", Value: name}}
		w.Sample("viewstags_requests_total", labels, float64(rm.Requests.Load()))
		w.Sample("viewstags_request_errors_total", labels, float64(rm.Errors.Load()))
		w.HistogramEx("viewstags_request_duration_seconds", labels, rm.Latency.Snapshot(),
			rm.Exemplars.Top(maxExemplarsPerRoute))
	})
	w.Gauge("viewstags_in_flight", "Requests currently being served.")
	w.Sample("viewstags_in_flight", nil, float64(m.InFlight.Load()))
	w.Counter("viewstags_rejected_total", "Requests shed by the concurrency limiter.")
	w.Sample("viewstags_rejected_total", nil, float64(m.Rejected.Load()))
	w.Counter("viewstags_predictions_total", "Individual predictions served (a batch of k adds k).")
	w.Sample("viewstags_predictions_total", nil, float64(m.Predictions.Load()))
}
