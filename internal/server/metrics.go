package server

import (
	"strings"
	"sync/atomic"
)

// RouteMetrics holds one route's counters. All fields are atomics;
// read them with Load.
type RouteMetrics struct {
	Requests  atomic.Int64
	Errors    atomic.Int64
	LatencyNs atomic.Int64 // summed wall time, for mean latency
}

// Metrics is the server's counter set. It deliberately stays at
// atomic-counter granularity — cheap enough to leave on at load-test
// rates; percentiles belong to the load generator's P² sketches.
type Metrics struct {
	Predict RouteMetrics
	Ingest  RouteMetrics
	Place   RouteMetrics
	Preload RouteMetrics
	// Internal aggregates the shard-internal /internal/* routes the
	// cluster gateway drives, so shard operators can tell gateway
	// traffic from direct client traffic at a glance.
	Internal RouteMetrics
	Other    RouteMetrics

	InFlight atomic.Int64
	Rejected atomic.Int64
	// Predictions counts individual predictions served — a batch of k
	// adds k, so throughput comparisons across batch sizes stay honest.
	// (The write-path analogue, accepted events, is owned by the ingest
	// accumulator; the stats handler surfaces it from there.)
	Predictions atomic.Int64
}

// NewMetrics returns a zeroed counter set.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) route(path string) *RouteMetrics {
	switch path {
	case "/v1/predict":
		return &m.Predict
	case "/v1/ingest":
		return &m.Ingest
	case "/v1/place":
		return &m.Place
	case "/v1/preload":
		return &m.Preload
	default:
		if strings.HasPrefix(path, "/internal/") {
			return &m.Internal
		}
		return &m.Other
	}
}

// RouteSnapshot is one route's counters at a point in time.
type RouteSnapshot struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	MeanMs    float64 `json:"mean_ms"`
	LatencyNs int64   `json:"-"`
}

// Snapshot is the JSON shape of /v1/stats (wrapped with the ingest
// stream stats by the handler when the write path is enabled).
type Snapshot struct {
	Predict     RouteSnapshot `json:"predict"`
	Ingest      RouteSnapshot `json:"ingest"`
	Place       RouteSnapshot `json:"place"`
	Preload     RouteSnapshot `json:"preload"`
	Internal    RouteSnapshot `json:"internal"`
	Other       RouteSnapshot `json:"other"`
	InFlight    int64         `json:"in_flight"`
	Rejected    int64         `json:"rejected"`
	Predictions int64         `json:"predictions"`
	// Events mirrors the ingest accumulator's accepted-event count;
	// the handler fills it (the Metrics struct holds no copy).
	Events int64 `json:"events"`
}

func snapRoute(m *RouteMetrics) RouteSnapshot {
	s := RouteSnapshot{
		Requests:  m.Requests.Load(),
		Errors:    m.Errors.Load(),
		LatencyNs: m.LatencyNs.Load(),
	}
	if s.Requests > 0 {
		s.MeanMs = float64(s.LatencyNs) / float64(s.Requests) / 1e6
	}
	return s
}

// Snapshot captures all counters.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Predict:     snapRoute(&m.Predict),
		Ingest:      snapRoute(&m.Ingest),
		Place:       snapRoute(&m.Place),
		Preload:     snapRoute(&m.Preload),
		Internal:    snapRoute(&m.Internal),
		Other:       snapRoute(&m.Other),
		InFlight:    m.InFlight.Load(),
		Rejected:    m.Rejected.Load(),
		Predictions: m.Predictions.Load(),
	}
}
