package persist

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"viewstags/internal/alexa"
	"viewstags/internal/geo"
	"viewstags/internal/ingest"
	"viewstags/internal/pipeline"
	"viewstags/internal/profilestore"
)

var (
	fixOnce sync.Once
	fixRes  *pipeline.Result
	fixErr  error
)

func fixture(t testing.TB) *pipeline.Result {
	fixOnce.Do(func() {
		fixRes, fixErr = pipeline.FromSynthetic(2000, 20110301, alexa.DefaultConfig())
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fixRes
}

func buildSnap(t testing.TB) *profilestore.Snapshot {
	s, err := profilestore.Build(fixture(t).Analysis)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func quietOpts(dir string) Options {
	return Options{Dir: dir, Logger: log.New(io.Discard, "", 0)}
}

// mustOpen opens a manager and runs the (possibly empty) replay that
// arms appending, collecting replayed records.
func mustOpen(t *testing.T, opts Options, fromGen uint64) (*Manager, []walRecord) {
	t.Helper()
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	var recs []walRecord
	if _, _, err := m.Replay(fromGen, func(ev []ingest.Event, up []string) error {
		recs = append(recs, walRecord{events: ev, uploads: up})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return m, recs
}

func event(video, tag string, country int, views float64, upload bool) ingest.Event {
	return ingest.Event{Video: video, Tags: []string{tag}, Country: geo.CountryID(country), Views: views, Upload: upload}
}

// TestSnapshotCodecRoundTrip pins the checkpoint codec: every persisted
// field survives bit-identically, and both flipped bytes and truncation
// are detected.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	snap := buildSnap(t)
	data := snap.Export()
	meta := CheckpointMeta{Gen: 42, Epoch: 7}

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, meta, data); err != nil {
		t.Fatal(err)
	}
	gotMeta, got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta %+v != %+v", gotMeta, meta)
	}
	if got.Records != data.Records || len(got.Codes) != len(data.Codes) || len(got.Profiles) != len(data.Profiles) {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			got.Records, len(got.Codes), len(got.Profiles), data.Records, len(data.Codes), len(data.Profiles))
	}
	for i, c := range data.Codes {
		if got.Codes[i] != c {
			t.Fatalf("code %d: %q != %q", i, got.Codes[i], c)
		}
	}
	for i := range data.Prior {
		if got.Prior[i] != data.Prior[i] {
			t.Fatalf("prior %d not bit-identical", i)
		}
	}
	for i := range data.Profiles {
		if got.Profiles[i] != data.Profiles[i] {
			t.Fatalf("profile %d: %+v != %+v", i, got.Profiles[i], data.Profiles[i])
		}
		for c := range data.Vecs[i] {
			if got.Vecs[i][c] != data.Vecs[i][c] {
				t.Fatalf("vec[%d][%d] not bit-identical", i, c)
			}
		}
	}

	// Corruption: flip one payload byte — must fail the checksum.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[len(raw)/2] ^= 0x40
	if _, _, err := ReadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("ReadSnapshot accepted a corrupt checkpoint")
	}
	// Truncation: drop the tail.
	if _, _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("ReadSnapshot accepted a truncated checkpoint")
	}
	// Wrong magic.
	if _, _, err := ReadSnapshot(strings.NewReader("NOTACKPTxxxxxxxx")); err == nil {
		t.Fatal("ReadSnapshot accepted a foreign file")
	}
}

// faultWriter fails after limit bytes — the fault-injecting writer the
// crash-window tests use to model a disk filling up mid-write.
type faultWriter struct {
	n     int
	limit int
}

func (w *faultWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		room := w.limit - w.n
		if room < 0 {
			room = 0
		}
		w.n = w.limit
		return room, fmt.Errorf("fault: disk full")
	}
	w.n += len(p)
	return len(p), nil
}

// TestWriteSnapshotSurfacesWriteErrors pins that a failing writer (disk
// full) aborts the encode with an error instead of producing a short,
// silently accepted file.
func TestWriteSnapshotSurfacesWriteErrors(t *testing.T) {
	snap := buildSnap(t)
	for _, limit := range []int{0, 4, 100, 10_000} {
		if err := WriteSnapshot(&faultWriter{limit: limit}, CheckpointMeta{}, snap.Export()); err == nil {
			t.Fatalf("WriteSnapshot succeeded over a writer that fails after %d bytes", limit)
		}
	}
}

// TestWALAppendReplay pins the journal round trip: records come back in
// order, with their generations filtering replay.
func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	m, _ := mustOpen(t, quietOpts(dir), 0)
	if err := m.Append(0, []ingest.Event{event("v1", "alpha", 2, 10, true)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(0, nil, []string{"bare-upload"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(1, []ingest.Event{event("v2", "beta", 3, 5, false)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replay everything.
	m2, recs := mustOpen(t, quietOpts(dir), 0)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if recs[0].events[0].Video != "v1" || !recs[0].events[0].Upload || recs[0].events[0].Views != 10 {
		t.Fatalf("record 0 mangled: %+v", recs[0].events[0])
	}
	if len(recs[1].uploads) != 1 || recs[1].uploads[0] != "bare-upload" {
		t.Fatalf("record 1 mangled: %+v", recs[1])
	}
	if recs[2].events[0].Tags[0] != "beta" || recs[2].events[0].Country != 3 {
		t.Fatalf("record 2 mangled: %+v", recs[2].events[0])
	}
	_ = m2.Close()

	// Reopen with a checkpoint horizon: gen-0 records are covered.
	m3, recs3 := mustOpen(t, quietOpts(dir), 1)
	if len(recs3) != 1 || recs3[0].events[0].Video != "v2" {
		t.Fatalf("replay from gen 1 delivered %d records (%+v), want just v2", len(recs3), recs3)
	}
	_ = m3.Close()
}

// TestWALRotationAndPrune pins segment rotation by size and the
// checkpoint-driven prune: covered segments disappear, the active one
// stays.
func TestWALRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	opts := quietOpts(dir)
	opts.SegmentBytes = 256 // force rotation every couple of records
	m, _ := mustOpen(t, opts, 0)
	for i := 0; i < 20; i++ {
		if err := m.Append(uint64(i), []ingest.Event{event(fmt.Sprintf("v%d", i), "tag-with-some-length", 1, 1, false)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.WALSegments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.WALSegments)
	}

	snap := buildSnap(t)
	// Two checkpoints: pruning keys off the OLDEST retained one, so
	// cover everything twice to see segments actually go.
	if err := m.SaveCheckpoint(CheckpointMeta{Gen: 20, Epoch: 1}, snap.Export()); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveCheckpoint(CheckpointMeta{Gen: 21, Epoch: 2}, snap.Export()); err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.WALSegments > 1 {
		t.Fatalf("prune left %d segments, want just the active one", st.WALSegments)
	}
	if st.Checkpoints != 2 {
		t.Fatalf("%d checkpoints retained, want 2", st.Checkpoints)
	}
	_ = m.Close()

	// After recovery nothing replays: every record is covered.
	m2, recs := mustOpen(t, quietOpts(dir), 21)
	if len(recs) != 0 {
		t.Fatalf("replayed %d covered records, want 0", len(recs))
	}
	_ = m2.Close()
}

// TestTornTailTruncated pins the crash-mid-append window: a partial
// final record is truncated away, everything before it replays, and the
// log accepts appends again afterwards.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	m, _ := mustOpen(t, quietOpts(dir), 0)
	for i := 0; i < 3; i++ {
		if err := m.Append(uint64(i), []ingest.Event{event(fmt.Sprintf("v%d", i), "tag", 1, 1, false)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	_ = m.Close()

	// Simulate the crash: chop bytes off the tail, mid-frame.
	seg := onlySegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	m2, recs := mustOpen(t, quietOpts(dir), 0)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(recs))
	}
	if st := m2.Stats(); !st.TornTailTruncated {
		t.Fatal("stats do not report the torn-tail truncation")
	}
	// The tail is clean again: appending and replaying still works.
	if err := m2.Append(9, []ingest.Event{event("v9", "tag", 1, 1, false)}, nil); err != nil {
		t.Fatal(err)
	}
	_ = m2.Close()
	m3, recs3 := mustOpen(t, quietOpts(dir), 0)
	if len(recs3) != 3 {
		t.Fatalf("replayed %d records after recovery append, want 3", len(recs3))
	}
	if recs3[2].events[0].Video != "v9" {
		t.Fatalf("post-recovery append lost: %+v", recs3[2])
	}
	_ = m3.Close()

	// CRC corruption (not just truncation) of the tail is torn too.
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m4, recs4 := mustOpen(t, quietOpts(dir), 0)
	if len(recs4) != 2 {
		t.Fatalf("replayed %d records after CRC-corrupt tail, want 2", len(recs4))
	}
	if st := m4.Stats(); !st.TornTailTruncated {
		t.Fatal("stats do not report the CRC truncation")
	}
	_ = m4.Close()
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	return segs[0]
}

// TestCheckpointRenameWindow pins the kill-between-write-and-rename
// crash: the leftover .tmp is ignored and removed, and recovery serves
// the previous checkpoint plus the full journal.
func TestCheckpointRenameWindow(t *testing.T) {
	dir := t.TempDir()
	snap := buildSnap(t)
	m, _ := mustOpen(t, quietOpts(dir), 0)
	if err := m.SaveCheckpoint(CheckpointMeta{Gen: 1, Epoch: 1}, snap.Export()); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(1, []ingest.Event{event("v1", "tag", 1, 1, false)}, nil); err != nil {
		t.Fatal(err)
	}
	_ = m.Close()

	// The "crash": a half-written checkpoint that never got renamed.
	tmp := filepath.Join(dir, "checkpoint-0000000000000007.ckpt.tmp")
	if err := os.WriteFile(tmp, []byte("VTCKPT01 partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(quietOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover .tmp survived Open")
	}
	loaded, meta, found, err := m2.LoadCheckpoint(fixture(t).Analysis.World)
	if err != nil || !found {
		t.Fatalf("LoadCheckpoint: found=%v err=%v", found, err)
	}
	if meta.Gen != 1 || loaded.NumTags() != snap.NumTags() {
		t.Fatalf("recovered wrong checkpoint: meta %+v, %d tags", meta, loaded.NumTags())
	}
	var n int
	if _, _, err := m2.Replay(meta.Gen, func(ev []ingest.Event, up []string) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want 1", n)
	}
	_ = m2.Close()
}

// TestCorruptNewestCheckpointFallsBack pins the fallback: when the
// newest checkpoint is corrupt, recovery loads the previous one, and
// the WAL records it needs are still present (prune keys off the oldest
// retained checkpoint).
func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	snap := buildSnap(t)
	m, _ := mustOpen(t, quietOpts(dir), 0)
	if err := m.Append(0, []ingest.Event{event("v0", "tag", 1, 1, false)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveCheckpoint(CheckpointMeta{Gen: 1, Epoch: 1}, snap.Export()); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(1, []ingest.Event{event("v1", "tag", 1, 1, false)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveCheckpoint(CheckpointMeta{Gen: 2, Epoch: 2}, snap.Export()); err != nil {
		t.Fatal(err)
	}
	_ = m.Close()

	// Corrupt the newest checkpoint's interior.
	newest := filepath.Join(dir, "checkpoint-0000000000000002.ckpt")
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x55
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(quietOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	_, meta, found, err := m2.LoadCheckpoint(fixture(t).Analysis.World)
	if err != nil || !found {
		t.Fatalf("LoadCheckpoint: found=%v err=%v", found, err)
	}
	if meta.Gen != 1 {
		t.Fatalf("fell back to gen %d, want 1", meta.Gen)
	}
	// The gen-1 record the fallback needs must still replay.
	var vids []string
	if _, _, err := m2.Replay(meta.Gen, func(ev []ingest.Event, up []string) error {
		for i := range ev {
			vids = append(vids, ev[i].Video)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(vids) != 1 || vids[0] != "v1" {
		t.Fatalf("fallback replay got %v, want [v1]", vids)
	}
	_ = m2.Close()
}

// TestStaleSegmentsWithCheckpoint pins the "checkpoint with stale
// segments present" crash window: segments whose records the checkpoint
// covers are filtered from replay (no double-apply) even when a crash
// prevented pruning, and recovery lands on the last acked state.
func TestStaleSegmentsWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	snap := buildSnap(t)
	opts := quietOpts(dir)
	opts.SegmentBytes = 128 // every record its own segment
	m, _ := mustOpen(t, opts, 0)
	if err := m.Append(0, []ingest.Event{event("covered-a", "tag", 1, 1, false)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(1, []ingest.Event{event("covered-b", "tag", 1, 1, false)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(2, []ingest.Event{event("tail", "tag", 1, 1, false)}, nil); err != nil {
		t.Fatal(err)
	}
	_ = m.Close()

	// A checkpoint covering gens < 2 appears, but the process dies
	// before pruning: write it via a second manager that never touches
	// the WAL files.
	mw, err := Open(quietOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.SaveCheckpoint(CheckpointMeta{Gen: 2, Epoch: 1}, snap.Export()); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(quietOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	_, meta, found, err := m2.LoadCheckpoint(fixture(t).Analysis.World)
	if err != nil || !found || meta.Gen != 2 {
		t.Fatalf("LoadCheckpoint: meta=%+v found=%v err=%v", meta, found, err)
	}
	var vids []string
	if _, _, err := m2.Replay(meta.Gen, func(ev []ingest.Event, up []string) error {
		for i := range ev {
			vids = append(vids, ev[i].Video)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(vids) != 1 || vids[0] != "tail" {
		t.Fatalf("replay with stale segments got %v, want [tail]", vids)
	}
	_ = m2.Close()
}

// TestRecoverToLastAckedEpoch drives the full accumulator+manager loop
// the daemon runs — journal, drain, checkpoint, more journal, crash —
// and asserts recovery reconstructs exactly the acked state.
func TestRecoverToLastAckedEpoch(t *testing.T) {
	dir := t.TempDir()
	res := fixture(t)
	nUS := int(res.Analysis.World.MustByCode("US"))
	nJP := int(res.Analysis.World.MustByCode("JP"))

	snap := buildSnap(t)
	store, err := profilestore.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := mustOpen(t, quietOpts(dir), 0)
	acc, err := ingest.NewAccumulator(store, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	acc.SetJournal(m)

	// Epoch 1: journaled, folded, checkpointed.
	if err := acc.Add([]ingest.Event{event("up-1", "zz-recover", nUS, 80, true)}); err != nil {
		t.Fatal(err)
	}
	deltas, newRecords, _, gen := acc.Drain()
	next, err := profilestore.Rebuild(store.Load(), deltas, newRecords)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Swap(next); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveCheckpoint(CheckpointMeta{Gen: gen, Epoch: 1}, store.Load().Export()); err != nil {
		t.Fatal(err)
	}

	// Epoch 2 in flight: journaled and acked, never folded — the crash
	// window the WAL exists for.
	if err := acc.Add([]ingest.Event{event("up-2", "zz-recover", nJP, 20, false)}); err != nil {
		t.Fatal(err)
	}
	_ = m.Close() // crash

	// Recovery.
	m2, err := Open(quietOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	recSnap, meta, found, err := m2.LoadCheckpoint(res.Analysis.World)
	if err != nil || !found {
		t.Fatalf("LoadCheckpoint: found=%v err=%v", found, err)
	}
	store2, err := profilestore.NewStore(recSnap)
	if err != nil {
		t.Fatal(err)
	}
	acc2, err := ingest.NewAccumulator(store2, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	acc2.Restore(meta.Gen, meta.Epoch)
	maxGen, applied, err := m2.Replay(meta.Gen, acc2.Replay)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("replayed %d records, want 1 (the unfolded tail)", applied)
	}
	if maxGen >= meta.Gen {
		acc2.Restore(maxGen+1, meta.Epoch)
	}
	deltas2, newRecords2, _, _ := acc2.Drain()
	rec2, err := profilestore.Rebuild(store2.Load(), deltas2, newRecords2)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same events, never crashed.
	refStore, err := profilestore.NewStore(buildSnap(t))
	if err != nil {
		t.Fatal(err)
	}
	refAcc, err := ingest.NewAccumulator(refStore, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if err := refAcc.Add([]ingest.Event{
		event("up-1", "zz-recover", nUS, 80, true),
		event("up-2", "zz-recover", nJP, 20, false),
	}); err != nil {
		t.Fatal(err)
	}
	refDeltas, refRecords, _, _ := refAcc.Drain()
	ref, err := profilestore.Rebuild(refStore.Load(), refDeltas, refRecords)
	if err != nil {
		t.Fatal(err)
	}

	if rec2.Records() != ref.Records() {
		t.Fatalf("records %d != reference %d", rec2.Records(), ref.Records())
	}
	id, ok := rec2.Lookup("zz-recover")
	if !ok {
		t.Fatal("recovered snapshot lost the ingested tag")
	}
	refID, _ := ref.Lookup("zz-recover")
	va, vb := rec2.Vec(id), ref.Vec(refID)
	for c := range va {
		if diff := va[c] - vb[c]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("recovered geography diverges at %d: %v vs %v", c, va[c], vb[c])
		}
	}
	if rec2.Profile(id).Videos != ref.Profile(refID).Videos {
		t.Fatalf("videos %d != reference %d", rec2.Profile(id).Videos, ref.Profile(refID).Videos)
	}
	_ = m2.Close()
}

// TestAppendBeforeReplayRefused pins the guard that keeps a process
// from appending past an unexamined (possibly torn) tail.
func TestAppendBeforeReplayRefused(t *testing.T) {
	m, err := Open(quietOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(0, []ingest.Event{event("v", "t", 0, 1, false)}, nil); err == nil {
		t.Fatal("Append before Replay succeeded")
	}
}

func BenchmarkSnapshotSave(b *testing.B) {
	snap := buildSnap(b)
	data := snap.Export()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteSnapshot(&buf, CheckpointMeta{Gen: 1}, data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkSnapshotLoad(b *testing.B) {
	snap := buildSnap(b)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, CheckpointMeta{Gen: 1}, snap.Export()); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadSnapshot(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	m, err := Open(Options{Dir: dir, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := m.Replay(0, func([]ingest.Event, []string) error { return nil }); err != nil {
		b.Fatal(err)
	}
	events := []ingest.Event{
		{Video: "bench-video-id", Tags: []string{"music", "live", "tour-2011"}, Country: 3, Views: 12, Upload: true},
		{Video: "bench-video-id", Tags: []string{"music"}, Country: 7, Views: 4},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Append(uint64(i), events, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = m.Close()
}

// TestReadSnapshotCorruptCountsErrorNotOOM pins that a checkpoint whose
// counts are corrupt (huge nTags with no data behind it) fails with a
// decode error instead of attempting a gigantic allocation — recovery's
// fall-back-to-older-checkpoint depends on corrupt files erroring, not
// OOM-killing the daemon.
func TestReadSnapshotCorruptCountsErrorNotOOM(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(ckptMagic)
	e := &enc{w: &buf}
	e.u64(1)     // gen
	e.u64(1)     // epoch
	e.u64(10)    // records
	e.uvarint(1) // one country
	e.str("US")
	e.f64(1.0)             // prior
	e.uvarint(200_000_000) // claimed tag count, no data behind it
	if e.err != nil {
		t.Fatal(e.err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ReadSnapshot accepted a corrupt tag count")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ReadSnapshot hung (or allocated its way to a stall) on a corrupt tag count")
	}
}
