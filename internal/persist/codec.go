package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"viewstags/internal/dist"
	"viewstags/internal/geo"
	"viewstags/internal/ingest"
	"viewstags/internal/profilestore"
)

// On-disk formats. Both files are little-endian and CRC-32 (IEEE)
// checksummed; the magic's trailing digits are the format version, so a
// future layout change is a new magic, not a silent misparse.
//
// Checkpoint file:
//
//	"VTCKPT01" | payload | crc32(payload)
//
// where payload is the snapshot codec below (generation, epoch, record
// count, country table, prior, profiles, dense vector table).
//
// WAL segment file:
//
//	"VTWAL001" | frame*
//
// where each frame is
//
//	u32 len | u32 crc32(payload) | payload
//
// and payload is one journaled ingest batch (generation, events,
// upload announcements). A crash mid-append leaves a torn final frame;
// readFrame reports it as errTorn and recovery truncates it away.
var (
	ckptMagic = []byte("VTCKPT01")
	walMagic  = []byte("VTWAL001")
)

// Decode-time sanity bounds: a corrupt length must produce an error,
// not an allocation the size of the corruption.
const (
	maxStrLen    = 1 << 20
	maxCountries = 1 << 16
	maxTags      = 1 << 28
	maxFrameLen  = 64 << 20
)

// errTorn marks a partially written (or CRC-corrupt) frame at a WAL
// segment tail.
var errTorn = fmt.Errorf("persist: torn record")

// enc is a little-endian primitive writer with sticky error capture.
type enc struct {
	w   io.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *enc) bytes(p []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(p)
	}
}

func (e *enc) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.bytes(e.buf[:4])
}

func (e *enc) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.bytes(e.buf[:8])
}

func (e *enc) uvarint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.bytes(e.buf[:n])
}

func (e *enc) varint(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.bytes(e.buf[:n])
}

func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.bytes([]byte(s))
}

func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) f64s(v []float64) {
	for _, x := range v {
		e.f64(x)
	}
}

// dec is the matching reader. When crc is non-nil every consumed byte
// feeds it, so the caller can compare against a stored checksum after
// decoding.
type dec struct {
	r   *bufio.Reader
	crc hash.Hash32
	err error
	buf [8]byte
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) bytes(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.fail(err)
		return
	}
	if d.crc != nil {
		_, _ = d.crc.Write(p)
	}
}

func (d *dec) u32() uint32 {
	d.bytes(d.buf[:4])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *dec) u64() uint64 {
	d.bytes(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:8])
}

// readByte feeds the CRC, unlike d.r.ReadByte.
func (d *dec) readByte() (byte, error) {
	d.bytes(d.buf[:1])
	if d.err != nil {
		return 0, d.err
	}
	return d.buf[0], nil
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(byteReaderFunc(d.readByte))
	if err != nil {
		d.fail(err)
		return 0
	}
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(byteReaderFunc(d.readByte))
	if err != nil {
		d.fail(err)
		return 0
	}
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStrLen {
		d.fail(fmt.Errorf("persist: string length %d exceeds bound", n))
		return ""
	}
	p := make([]byte, n)
	d.bytes(p)
	return string(p)
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) f64s(out []float64) {
	for i := range out {
		out[i] = d.f64()
	}
}

type byteReaderFunc func() (byte, error)

func (f byteReaderFunc) ReadByte() (byte, error) { return f() }

// WriteSnapshot encodes a checkpoint: magic, versioned payload
// (generation, epoch and the exported snapshot), trailing CRC. The
// writer should be a buffered file; WriteSnapshot does not fsync.
func WriteSnapshot(w io.Writer, meta CheckpointMeta, data profilestore.SnapshotData) error {
	if len(data.Vecs) != len(data.Profiles) {
		return fmt.Errorf("persist: %d vectors for %d profiles", len(data.Vecs), len(data.Profiles))
	}
	if _, err := w.Write(ckptMagic); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	e := &enc{w: io.MultiWriter(w, crc)}
	e.u64(meta.Gen)
	e.u64(meta.Epoch)
	e.u64(uint64(data.Records))
	e.uvarint(uint64(len(data.Codes)))
	for _, c := range data.Codes {
		e.str(c)
	}
	e.f64s(data.Prior)
	e.uvarint(uint64(len(data.Profiles)))
	for i := range data.Profiles {
		p := &data.Profiles[i]
		e.str(p.Name)
		e.uvarint(uint64(p.Videos))
		e.f64(p.TotalViews)
		e.varint(int64(p.Spread))
		e.varint(int64(p.TopCountry))
		e.f64(p.TopShare)
	}
	for _, vec := range data.Vecs {
		if len(vec) != len(data.Codes) {
			return fmt.Errorf("persist: vector has %d entries for %d countries", len(vec), len(data.Codes))
		}
		e.f64s(vec)
	}
	if e.err != nil {
		return e.err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// ReadSnapshot decodes a checkpoint written by WriteSnapshot, verifying
// magic and checksum. The returned data is freshly allocated (vectors
// share one slab), ready for profilestore.FromData.
func ReadSnapshot(r io.Reader) (CheckpointMeta, profilestore.SnapshotData, error) {
	var meta CheckpointMeta
	var data profilestore.SnapshotData
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return meta, data, fmt.Errorf("persist: checkpoint header: %w", err)
	}
	if !bytes.Equal(magic, ckptMagic) {
		return meta, data, fmt.Errorf("persist: not a checkpoint file (magic %q)", magic)
	}
	d := &dec{r: br, crc: crc32.NewIEEE()}
	meta.Gen = d.u64()
	meta.Epoch = d.u64()
	data.Records = int(d.u64())
	nCodes := d.uvarint()
	if d.err == nil && nCodes > maxCountries {
		d.fail(fmt.Errorf("persist: country count %d exceeds bound", nCodes))
	}
	if d.err == nil {
		data.Codes = make([]string, nCodes)
		for i := range data.Codes {
			data.Codes[i] = d.str()
		}
		data.Prior = make([]float64, nCodes)
		d.f64s(data.Prior)
	}
	nTags := d.uvarint()
	if d.err == nil && nTags > maxTags {
		d.fail(fmt.Errorf("persist: tag count %d exceeds bound", nTags))
	}
	if d.err == nil {
		// Grow by appending rather than trusting the count: a corrupt
		// nTags must fail at EOF after the real bytes run out, not
		// preallocate gigabytes before the trailing CRC is ever
		// checked (recovery's fallback-to-older-checkpoint depends on
		// corrupt files erroring, not OOM-killing the process).
		data.Profiles = make([]profilestore.Profile, 0, min(int(nTags), 4096))
		for i := 0; i < int(nTags) && d.err == nil; i++ {
			p := profilestore.Profile{ID: int32(i)}
			p.Name = d.str()
			p.Videos = int(d.uvarint())
			p.TotalViews = d.f64()
			p.Spread = dist.Spread(d.varint())
			p.TopCountry = geo.CountryID(d.varint())
			p.TopShare = d.f64()
			data.Profiles = append(data.Profiles, p)
		}
	}
	if d.err == nil {
		// Every profile above was proven by consumed bytes, so
		// nTags*nCodes is now a trustworthy size for the vector slab.
		slab := make([]float64, int(nTags)*int(nCodes))
		data.Vecs = make([][]float64, nTags)
		for i := range data.Vecs {
			vec := slab[i*int(nCodes) : (i+1)*int(nCodes) : (i+1)*int(nCodes)]
			d.f64s(vec)
			data.Vecs[i] = vec
			if d.err != nil {
				break
			}
		}
	}
	if d.err != nil {
		return meta, data, fmt.Errorf("persist: checkpoint decode: %w", d.err)
	}
	sum := d.crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return meta, data, fmt.Errorf("persist: checkpoint checksum missing: %w", err)
	}
	if stored := binary.LittleEndian.Uint32(tail[:]); stored != sum {
		return meta, data, fmt.Errorf("persist: checkpoint checksum mismatch (stored %08x, computed %08x)", stored, sum)
	}
	return meta, data, nil
}

// encodeRecord serializes one journaled ingest batch into buf
// (resetting it first) as a CRC-framed record ready to append.
func encodeRecord(buf *bytes.Buffer, gen uint64, events []ingest.Event, uploads []string) error {
	buf.Reset()
	// Reserve the frame header; payload follows.
	buf.Write(make([]byte, 8))
	e := &enc{w: buf}
	e.u64(gen)
	e.uvarint(uint64(len(events)))
	for i := range events {
		ev := &events[i]
		e.str(ev.Video)
		e.uvarint(uint64(len(ev.Tags)))
		for _, t := range ev.Tags {
			e.str(t)
		}
		e.uvarint(uint64(int(ev.Country)))
		e.f64(ev.Views)
		if ev.Upload {
			e.bytes([]byte{1})
		} else {
			e.bytes([]byte{0})
		}
	}
	e.uvarint(uint64(len(uploads)))
	for _, v := range uploads {
		e.str(v)
	}
	if e.err != nil {
		return e.err
	}
	frame := buf.Bytes()
	payload := frame[8:]
	if len(payload) > maxFrameLen {
		return fmt.Errorf("persist: record of %d bytes exceeds frame bound", len(payload))
	}
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return nil
}

// walRecord is one decoded journal record.
type walRecord struct {
	gen     uint64
	events  []ingest.Event
	uploads []string
}

// readRecord reads the next frame from a segment reader, returning the
// record and the frame's on-disk size. io.EOF means a clean end;
// errTorn means a partial or corrupt frame (crash tail).
func readRecord(br *bufio.Reader) (walRecord, int64, error) {
	var rec walRecord
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return rec, 0, io.EOF
		}
		return rec, 0, errTorn // partial header
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	stored := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFrameLen {
		return rec, 0, errTorn
	}
	size := int64(8) + int64(n)
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return rec, 0, errTorn // partial payload
	}
	if crc32.ChecksumIEEE(payload) != stored {
		return rec, 0, errTorn
	}
	d := &dec{r: bufio.NewReader(bytes.NewReader(payload))}
	rec.gen = d.u64()
	nEvents := d.uvarint()
	if d.err == nil && nEvents > maxFrameLen {
		d.fail(fmt.Errorf("persist: event count %d exceeds bound", nEvents))
	}
	if d.err == nil {
		rec.events = make([]ingest.Event, nEvents)
		for i := range rec.events {
			ev := &rec.events[i]
			ev.Video = d.str()
			nt := d.uvarint()
			if d.err != nil || nt > maxFrameLen {
				d.fail(fmt.Errorf("persist: tag count %d exceeds bound", nt))
				break
			}
			ev.Tags = make([]string, nt)
			for j := range ev.Tags {
				ev.Tags[j] = d.str()
			}
			ev.Country = geo.CountryID(d.uvarint())
			ev.Views = d.f64()
			b, err := d.readByte()
			if err == nil {
				ev.Upload = b != 0
			}
		}
	}
	nUploads := d.uvarint()
	if d.err == nil && nUploads > maxFrameLen {
		d.fail(fmt.Errorf("persist: upload count %d exceeds bound", nUploads))
	}
	if d.err == nil {
		rec.uploads = make([]string, nUploads)
		for i := range rec.uploads {
			rec.uploads[i] = d.str()
		}
	}
	if d.err != nil {
		// The frame passed its CRC but does not parse: structural
		// corruption, not a torn tail — surface it as such.
		return rec, size, fmt.Errorf("persist: record decode: %w", d.err)
	}
	return rec, size, nil
}
