package persist

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"viewstags/internal/ingest"
	"viewstags/internal/xrand"
)

// The randomized fault-injection property test for WAL recovery. Each
// trial builds a real multi-segment journal of acked batches, damages
// it at a random byte — truncation (a crash mid-write) or a flip (a
// torn sector, bit rot) — and pins the recovery contract:
//
//   - damage in the FINAL segment is a crash tail: Replay succeeds and
//     applies exactly the acked prefix up to the damaged frame — never
//     a record past it (over-replay), never a subset with holes;
//   - damage anywhere EARLIER is unrecoverable history: Replay refuses
//     with an error, and whatever it applied before stopping is still
//     an exact prefix;
//   - recovery never panics, and after a successful tail repair the
//     journal accepts new appends and replays them on the next open.
//
// The damage offset, mode and journal shape all derive from one seed,
// so a failure reproduces exactly.

// frameIndex maps one intact segment's layout: end offset of each
// frame (relative to file start) paired with the cumulative count of
// records across the whole journal up to and including that frame.
type walFrame struct {
	end    int64 // first byte past this frame
	global int   // 1-based global record ordinal
}

type walSegIndex struct {
	path   string
	size   int64
	frames []walFrame
}

// indexWAL scans the intact journal with the production frame reader,
// recording every frame boundary. Damage expectations are computed
// from this map, not re-derived from recovery's own output.
func indexWAL(t *testing.T, dir string) []walSegIndex {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []walSegIndex
	for _, ent := range entries {
		if name := ent.Name(); len(name) > 4 && name[:4] == "wal-" {
			segs = append(segs, walSegIndex{path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].path < segs[b].path })
	global := 0
	for i := range segs {
		seg := &segs[i]
		raw, err := os.ReadFile(seg.path)
		if err != nil {
			t.Fatal(err)
		}
		seg.size = int64(len(raw))
		if !bytes.HasPrefix(raw, walMagic) {
			t.Fatalf("intact segment %s lacks magic", seg.path)
		}
		br := bufio.NewReader(bytes.NewReader(raw[len(walMagic):]))
		off := int64(len(walMagic))
		for {
			_, size, err := readRecord(br)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("intact segment %s unreadable at %d: %v", seg.path, off, err)
			}
			off += size
			global++
			seg.frames = append(seg.frames, walFrame{end: off, global: global})
		}
	}
	return segs
}

// survivors returns how many of the journal's records remain acked
// after damaging segment s at byte offset off: every record of earlier
// segments, plus this segment's frames that end at or before the
// damage. (A hit inside the magic header takes out the whole segment.)
func survivors(segs []walSegIndex, s int, off int64) int {
	n := 0
	if s > 0 {
		if f := segs[s-1].frames; len(f) > 0 {
			n = f[len(f)-1].global
		}
	}
	for _, fr := range segs[s].frames {
		if fr.end <= off {
			n = fr.global
		}
	}
	return n
}

func TestWALRandomFaultRecovery(t *testing.T) {
	src := xrand.NewSource(20110301)
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		trialSrc := src.Fork(fmt.Sprintf("trial-%d", trial))
		t.Run(fmt.Sprintf("trial-%02d", trial), func(t *testing.T) {
			runFaultTrial(t, trialSrc)
		})
	}
}

func runFaultTrial(t *testing.T, src *xrand.Source) {
	dir := t.TempDir()
	opts := quietOpts(dir)
	// Tiny segments force rotation every few records, so damage lands
	// mid-history as often as at the tail.
	opts.SegmentBytes = 256

	// Build the journal: batches are the acked history; gen is the
	// 1-based batch ordinal so the replay sequence is self-describing.
	nBatches := 6 + src.Intn(18)
	type batch struct {
		video string
		views float64
	}
	acked := make([]batch, nBatches)
	m, recs := mustOpen(t, opts, 0)
	if len(recs) != 0 {
		t.Fatalf("fresh dir replayed %d records", len(recs))
	}
	for i := range acked {
		acked[i] = batch{
			video: fmt.Sprintf("vid-%03d-%04d", i, src.Intn(10000)),
			views: float64(1 + src.Intn(50)),
		}
		evs := []ingest.Event{event(acked[i].video, "tag", src.Intn(5), acked[i].views, src.Bernoulli(0.2))}
		if err := m.Append(uint64(i+1), evs, nil); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	segs := indexWAL(t, dir)
	if len(segs) < 2 {
		t.Fatalf("journal did not rotate (%d segments); SegmentBytes too large for the trial", len(segs))
	}

	// Damage: a random byte of a random segment, truncated or flipped.
	s := src.Intn(len(segs))
	off := int64(src.Intn(int(segs[s].size)))
	flip := src.Bernoulli(0.5)
	if flip {
		raw, err := os.ReadFile(segs[s].path)
		if err != nil {
			t.Fatal(err)
		}
		raw[off] ^= 0x5a
		if err := os.WriteFile(segs[s].path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := os.Truncate(segs[s].path, off); err != nil {
			t.Fatal(err)
		}
	}
	last := s == len(segs)-1
	want := survivors(segs, s, off)
	mode := "truncate"
	if flip {
		mode = "flip"
	}
	ctx := fmt.Sprintf("%s seg %d/%d at %d/%d (want %d/%d records)",
		mode, s, len(segs), off, segs[s].size, want, nBatches)

	// Recover. Damage at the tail must repair; damage mid-history must
	// refuse. Either way, what reached apply must be an exact acked
	// prefix — the callback below verifies order and content in-line.
	m2, err := Open(opts)
	if err != nil {
		t.Fatalf("%s: reopen: %v", ctx, err)
	}
	applied := 0
	_, n, rerr := m2.Replay(0, func(evs []ingest.Event, _ []string) error {
		if applied >= nBatches {
			t.Fatalf("%s: over-replay: record %d beyond the acked history", ctx, applied+1)
		}
		if len(evs) != 1 || evs[0].Video != acked[applied].video || evs[0].Views != acked[applied].views {
			t.Fatalf("%s: record %d is not the acked batch: got %+v want %+v",
				ctx, applied+1, evs, acked[applied])
		}
		applied++
		return nil
	})
	if !last {
		if rerr == nil {
			t.Fatalf("%s: mid-history damage recovered silently (%d records)", ctx, n)
		}
		// The refusal must come exactly at the damage: everything acked
		// before it was already handed to apply, nothing after.
		if applied != want {
			t.Fatalf("%s: applied %d records before refusing, want %d", ctx, applied, want)
		}
		return
	}
	if rerr != nil {
		t.Fatalf("%s: tail damage did not recover: %v", ctx, rerr)
	}
	if applied != want || int(n) != want {
		t.Fatalf("%s: recovered %d records (reported %d), want %d", ctx, applied, n, want)
	}

	// The repaired journal must keep working: append, close, reopen,
	// and the next replay sees the surviving prefix plus the new batch.
	if err := m2.Append(uint64(nBatches+1), []ingest.Event{event("post-repair", "tag", 0, 7, false)}, nil); err != nil {
		t.Fatalf("%s: append after repair: %v", ctx, err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, recs3 := mustOpen(t, opts, 0)
	defer func() { _ = m3.Close() }()
	if len(recs3) != want+1 {
		t.Fatalf("%s: post-repair reopen replayed %d records, want %d", ctx, len(recs3), want+1)
	}
	lastRec := recs3[len(recs3)-1]
	if len(lastRec.events) != 1 || lastRec.events[0].Video != "post-repair" {
		t.Fatalf("%s: post-repair batch did not survive: %+v", ctx, lastRec.events)
	}
}
