// Package persist is the serving tier's durable state layer: it keeps
// the streamed view-event state that PRs 1–3 hold in RAM alive across
// daemon restarts and crashes, so a node rejoins with everything it
// ever acked instead of an empty epoch.
//
// It has three parts, glued together by a Manager over one data
// directory:
//
//   - A versioned, CRC-checksummed binary snapshot codec for
//     profilestore.SnapshotData (WriteSnapshot / ReadSnapshot):
//     interned ids, per-tag vectors, records, prior — round-trips
//     bit-identically, so a recovered node predicts exactly what the
//     crashed one did.
//
//   - An append-only write-ahead log for ingest batches: segment files
//     of length-prefixed, CRC-framed records, rotated by size, with an
//     fsync policy flag. The ingest accumulator journals every accepted
//     batch here before acking (Manager implements ingest.Journal), so
//     an ack means the events are on disk.
//
//   - A recovery path (LoadCheckpoint + Replay): on boot, load the
//     newest valid checkpoint, replay WAL records journaled at drain
//     generations the checkpoint does not cover, and truncate any torn
//     tail a crash left mid-record.
//
// The coverage contract is the drain generation (see ingest.Journal):
// every WAL record carries the generation it was journaled at, a
// checkpoint saved after the drain that returned generation G covers
// exactly the records with generation < G, and recovery replays the
// rest. Checkpoints prune WAL segments whose records are all covered,
// so disk use is bounded by checkpoint cadence, not uptime.
//
// Durability envelope: without fsync (the default), every write still
// reaches the kernel before the ack, so state survives any process
// death (SIGKILL, panic, OOM); only a whole-machine crash can lose the
// page-cache tail. With Fsync set, appends and checkpoints are synced
// and survive power loss, at a per-batch latency cost. Checkpoint
// installs are atomic (write-to-temp, fsync, rename), so a kill at any
// point leaves either the old or the new checkpoint, never a torn one.
package persist

import (
	"fmt"
	"log"
)

// DefaultSegmentBytes is the WAL rotation threshold when Options leaves
// SegmentBytes zero.
const DefaultSegmentBytes = 64 << 20

// Options parameterizes a Manager.
type Options struct {
	// Dir is the data directory (created if absent). One directory
	// belongs to one node; cluster shards use per-shard subdirectories
	// (cmd/serve derives shard-<i>-of-<n> automatically).
	Dir string
	// SegmentBytes rotates the WAL to a fresh segment file once the
	// active one exceeds this size (<= 0: DefaultSegmentBytes).
	SegmentBytes int64
	// Fsync syncs every WAL append and checkpoint to stable storage
	// before acking. Off by default: writes still survive process death
	// (they reach the kernel before the ack); set it when the tier must
	// also survive machine crashes and power loss.
	Fsync bool
	// Logger receives recovery notes (corrupt checkpoints skipped, torn
	// tails truncated). Nil uses the standard logger.
	Logger *log.Logger
}

// CheckpointMeta identifies a checkpoint: the drain generation it
// covers (every journaled record with a generation below it is folded
// into the snapshot) and the fold epoch the accumulator had reached, so
// a recovered node rejoins reporting its real epoch.
type CheckpointMeta struct {
	Gen   uint64 `json:"gen"`
	Epoch uint64 `json:"epoch"`
}

// Stats is a point-in-time summary of the durable state, surfaced by
// the server's /v1/stats and /healthz.
type Stats struct {
	Dir   string `json:"dir"`
	Fsync bool   `json:"fsync"`
	// CheckpointGen/Epoch describe the newest durable checkpoint.
	CheckpointGen   uint64 `json:"checkpoint_gen"`
	CheckpointEpoch uint64 `json:"checkpoint_epoch"`
	Checkpoints     int    `json:"checkpoints"` // checkpoint files on disk
	WALSegments     int    `json:"wal_segments"`
	WALBytes        int64  `json:"wal_bytes"`
	WALAppends      int64  `json:"wal_appends"` // records appended since boot
	// Recovered reports whether boot loaded a checkpoint; the replay
	// counters say how much journal it re-applied on top.
	Recovered       bool  `json:"recovered"`
	ReplayedRecords int64 `json:"replayed_records"`
	ReplayedEvents  int64 `json:"replayed_events"`
	// TornTailTruncated reports that recovery found (and truncated) a
	// partially written record at the journal tail — the signature of a
	// crash mid-append. The record's batch was never acked.
	TornTailTruncated bool `json:"torn_tail_truncated,omitempty"`
}

// ParseFsync maps the -fsync flag's policy names onto the boolean the
// Options carry: "always" syncs every append and checkpoint, "never"
// (the default) trusts the kernel's page cache.
func ParseFsync(policy string) (bool, error) {
	switch policy {
	case "always":
		return true, nil
	case "never", "":
		return false, nil
	default:
		return false, fmt.Errorf("persist: unknown fsync policy %q (want always or never)", policy)
	}
}
