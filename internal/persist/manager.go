package persist

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"viewstags/internal/geo"
	"viewstags/internal/ingest"
	"viewstags/internal/obs"
	"viewstags/internal/profilestore"
)

// keepCheckpoints is how many checkpoint files survive pruning: the
// newest, plus one predecessor as a fallback against latent corruption
// of the newest (recovery falls back automatically; the WAL records the
// fallback needs are only pruned up to the OLDEST kept checkpoint —
// see SaveCheckpoint).
const keepCheckpoints = 2

// segment is the Manager's view of one WAL file.
type segment struct {
	path    string
	seq     uint64
	size    int64
	lastGen uint64 // highest generation appended (valid when records)
	records bool   // holds at least one valid record
	// known reports the segment's contents have been accounted for —
	// scanned by Replay or written by this process. A segment that is
	// neither must never be pruned: its generations are a mystery, so
	// no checkpoint can prove it covered.
	known bool
}

// ckptFile is one checkpoint on disk.
type ckptFile struct {
	path string
	gen  uint64
}

// Manager owns one node's data directory: the checkpoint files, the WAL
// segments and the recovery bookkeeping. It implements ingest.Journal,
// so it plugs straight into the accumulator as the durability hook.
//
// Lifecycle: Open → LoadCheckpoint → Replay → (attach as journal, serve)
// with SaveCheckpoint called by the compactor from then on. Append
// refuses to run before Replay so a torn tail can never be appended
// past.
type Manager struct {
	opts   Options
	logger *log.Logger

	// mu guards the WAL state and the shared stats fields. Checkpoint
	// file writes deliberately happen outside it (see ckptMu), so a
	// multi-megabyte checkpoint never stalls an ingest ack.
	mu              sync.Mutex
	segments        []*segment
	ckpts           []ckptFile // ascending by gen
	walFile         *os.File
	active          *segment
	appendBuf       bytes.Buffer
	appends         int64
	pendingTrunc    int64 // torn-tail rollback offset; < 0 when clean
	replayDone      bool
	tornTail        bool
	replayedRecords int64
	replayedEvents  int64
	ckpt            CheckpointMeta
	hasCkpt         bool
	recovered       bool

	// ckptMu serializes checkpoint writes (compactor cadence, admin
	// route and shutdown flush may race).
	ckptMu sync.Mutex

	// walHist and ckptHist distribute Append and SaveCheckpoint wall
	// times for GET /metrics; both are written under their respective
	// locks but scraped lock-free.
	walHist  obs.Histogram
	ckptHist obs.Histogram

	// traces, when set, records each Append as a "bg/wal" trace and
	// each SaveCheckpoint as "bg/checkpoint" in the node's tail-sampled
	// ring, so slow or failing disk I/O shows up in flight-recorder
	// dumps next to the requests it stalled. Set via SetTraceStore
	// before serving traffic; read without a lock thereafter.
	traces *obs.TraceStore
}

// SetTraceStore attaches the tail-sampled trace ring the durable tier's
// background traces are offered to. Call before serving traffic (the
// field is read lock-free by Append).
func (m *Manager) SetTraceStore(ts *obs.TraceStore) { m.traces = ts }

// offerBG records one background operation as a single-span trace.
func (m *Manager) offerBG(route, span string, start time.Time, err error) {
	ts := m.traces
	if ts == nil {
		return
	}
	status, spanStatus := 200, ""
	if err != nil {
		status, spanStatus = 500, "error"
	}
	d := time.Since(start)
	tr := obs.GetTrace(obs.NewRequestID(), route, start)
	tr.Add(span, obs.NoShard, start, d, spanStatus)
	tr.End(status, false, d)
	ts.Offer(tr)
}

// Open scans (creating if absent) the data directory: leftover
// temporaries from an interrupted checkpoint install are removed,
// checkpoints and WAL segments are indexed. It does not read file
// contents — LoadCheckpoint and Replay do, in that order.
func Open(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persist: empty data directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	logger := opts.Logger
	if logger == nil {
		logger = log.Default()
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	m := &Manager{opts: opts, logger: logger, pendingTrunc: -1}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		path := filepath.Join(opts.Dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A checkpoint install died between write and rename; the
			// rename never happened, so the temp is garbage by contract.
			logger.Printf("persist: removing leftover temporary %s", name)
			_ = os.Remove(path)
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".ckpt"):
			gen, err := parseOrdinal(name, "checkpoint-", ".ckpt")
			if err != nil {
				logger.Printf("persist: ignoring unparseable checkpoint name %s", name)
				continue
			}
			m.ckpts = append(m.ckpts, ckptFile{path: path, gen: gen})
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			seq, err := parseOrdinal(name, "wal-", ".log")
			if err != nil {
				logger.Printf("persist: ignoring unparseable segment name %s", name)
				continue
			}
			info, err := ent.Info()
			if err != nil {
				return nil, fmt.Errorf("persist: %w", err)
			}
			m.segments = append(m.segments, &segment{path: path, seq: seq, size: info.Size()})
		}
	}
	sort.Slice(m.ckpts, func(a, b int) bool { return m.ckpts[a].gen < m.ckpts[b].gen })
	sort.Slice(m.segments, func(a, b int) bool { return m.segments[a].seq < m.segments[b].seq })
	return m, nil
}

func parseOrdinal(name, prefix, suffix string) (uint64, error) {
	return strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 16, 64)
}

// LoadCheckpoint loads the newest valid checkpoint into a serving
// snapshot against the given world. Corrupt checkpoints are skipped
// with a log line, falling back to the next-newest; found reports
// whether any checkpoint loaded. A checkpoint that decodes but was
// saved under a different country table is an error, not a fallback —
// serving silently different data is worse than refusing to start.
func (m *Manager) LoadCheckpoint(world *geo.World) (snap *profilestore.Snapshot, meta CheckpointMeta, found bool, err error) {
	for i := len(m.ckpts) - 1; i >= 0; i-- {
		c := m.ckpts[i]
		f, err := os.Open(c.path)
		if err != nil {
			m.logger.Printf("persist: skipping unreadable checkpoint %s: %v", filepath.Base(c.path), err)
			continue
		}
		meta, data, rerr := ReadSnapshot(f)
		_ = f.Close()
		if rerr != nil {
			m.logger.Printf("persist: skipping corrupt checkpoint %s: %v", filepath.Base(c.path), rerr)
			continue
		}
		snap, err := profilestore.FromData(data, world)
		if err != nil {
			return nil, meta, false, fmt.Errorf("persist: checkpoint %s: %w", filepath.Base(c.path), err)
		}
		m.mu.Lock()
		m.ckpt = meta
		m.hasCkpt = true
		m.recovered = true
		m.mu.Unlock()
		return snap, meta, true, nil
	}
	return nil, CheckpointMeta{}, false, nil
}

// Replay walks every WAL segment in order and hands each record with
// generation >= fromGen to apply (normally Accumulator.Replay). A torn
// final record — the signature of a crash mid-append — is truncated
// away; it was never acked. Corruption anywhere else refuses recovery:
// replaying past a hole would silently drop acked data.
//
// Returns the highest generation seen across all valid records (0 when
// the log is empty) and the number of records applied. Must run before
// the first Append.
func (m *Manager) Replay(fromGen uint64, apply func(events []ingest.Event, uploads []string) error) (maxGen uint64, applied int64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.walFile != nil {
		return 0, 0, fmt.Errorf("persist: replay after append")
	}
	keep := m.segments[:0]
	for idx, seg := range m.segments {
		last := idx == len(m.segments)-1
		maxG, app, err := m.replaySegment(seg, last, fromGen, apply)
		if err != nil {
			return maxGen, applied, err
		}
		if seg.size < 0 {
			// replaySegment deleted it (empty torn header).
			continue
		}
		keep = append(keep, seg)
		if maxG > maxGen {
			maxGen = maxG
		}
		applied += app
	}
	m.segments = keep
	m.replayDone = true
	m.replayedRecords += applied
	return maxGen, applied, nil
}

// replaySegment scans one segment. On return seg.size reflects any
// truncation; size < 0 means the file was removed entirely (torn before
// the first record).
func (m *Manager) replaySegment(seg *segment, last bool, fromGen uint64, apply func([]ingest.Event, []string) error) (maxGen uint64, applied int64, err error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, 0, fmt.Errorf("persist: %w", err)
	}
	defer func() { _ = f.Close() }()
	seg.known = true // about to account for every byte (or fail recovery)
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil || !bytes.Equal(magic, walMagic) {
		if !last {
			return 0, 0, fmt.Errorf("persist: segment %s has a corrupt header mid-history", filepath.Base(seg.path))
		}
		// The final segment died before its header finished: nothing in
		// it was ever acked. Drop the file.
		m.logger.Printf("persist: removing torn empty segment %s", filepath.Base(seg.path))
		m.tornTail = true
		_ = f.Close()
		if err := os.Remove(seg.path); err != nil {
			return 0, 0, fmt.Errorf("persist: %w", err)
		}
		seg.size = -1
		return 0, 0, nil
	}
	good := int64(len(walMagic)) // offset past the last valid record
	for {
		rec, size, err := readRecord(br)
		if err == io.EOF {
			break
		}
		if err == errTorn {
			if !last {
				return maxGen, applied, fmt.Errorf("persist: segment %s is corrupt mid-history (torn record not at the journal tail)", filepath.Base(seg.path))
			}
			m.logger.Printf("persist: truncating torn tail of %s at offset %d (was %d bytes)", filepath.Base(seg.path), good, seg.size)
			m.tornTail = true
			if err := os.Truncate(seg.path, good); err != nil {
				return maxGen, applied, fmt.Errorf("persist: %w", err)
			}
			seg.size = good
			return maxGen, applied, nil
		}
		if err != nil {
			return maxGen, applied, fmt.Errorf("persist: segment %s: %w", filepath.Base(seg.path), err)
		}
		good += size
		seg.records = true
		seg.lastGen = rec.gen
		if rec.gen > maxGen {
			maxGen = rec.gen
		}
		if rec.gen >= fromGen {
			if err := apply(rec.events, rec.uploads); err != nil {
				return maxGen, applied, fmt.Errorf("persist: replaying %s: %w", filepath.Base(seg.path), err)
			}
			applied++
			m.replayedEvents += int64(len(rec.events))
		}
	}
	seg.size = good
	return maxGen, applied, nil
}

// Append journals one accepted ingest batch — the ingest.Journal
// implementation. The frame reaches the kernel before Append returns
// (and stable storage too, under Fsync), so an acked batch survives the
// process; rotation starts a fresh segment once the active one exceeds
// SegmentBytes.
func (m *Manager) Append(gen uint64, events []ingest.Event, uploads []string) (err error) {
	start := time.Now()
	defer func() {
		m.walHist.Observe(time.Since(start))
		m.offerBG("bg/wal", "append", start, err)
	}()
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.replayDone {
		return fmt.Errorf("persist: append before replay")
	}
	if err := encodeRecord(&m.appendBuf, gen, events, uploads); err != nil {
		return err
	}
	frame := m.appendBuf.Bytes()
	if m.pendingTrunc >= 0 {
		// A previous append failed partway (e.g. ENOSPC) and its
		// rollback failed too: the segment still ends in a torn frame.
		// Nothing may be appended after it — and the segment must not
		// be rotated away either, or the tear becomes unrecoverable
		// mid-history corruption — so keep retrying the rollback and
		// fail the batch until it succeeds.
		if err := m.walFile.Truncate(m.pendingTrunc); err != nil {
			return fmt.Errorf("persist: journal has a torn tail pending rollback: %w", err)
		}
		m.active.size = m.pendingTrunc
		m.pendingTrunc = -1
	}
	if m.walFile == nil || m.active.size+int64(len(frame)) > m.opts.SegmentBytes {
		if err := m.rotateLocked(); err != nil {
			return err
		}
	}
	offset := m.active.size
	n, err := m.walFile.Write(frame)
	m.active.size += int64(n)
	if err != nil {
		// Roll the torn frame back immediately so the next (retried)
		// append lands on a clean tail; truncate-to-shrink virtually
		// always succeeds even on a full disk.
		if terr := m.walFile.Truncate(offset); terr == nil {
			m.active.size = offset
		} else {
			m.pendingTrunc = offset
		}
		return err
	}
	if m.opts.Fsync {
		if err := m.walFile.Sync(); err != nil {
			return err
		}
	}
	m.active.records = true
	if gen > m.active.lastGen {
		m.active.lastGen = gen
	}
	m.appends++
	return nil
}

// rotateLocked closes the active segment (if any) and opens the next
// one. On first append after recovery it resumes the last replayed
// segment when it still has room, so restarts don't fragment the log.
func (m *Manager) rotateLocked() error {
	if m.walFile != nil {
		if m.opts.Fsync {
			_ = m.walFile.Sync()
		}
		_ = m.walFile.Close()
		m.walFile = nil
		m.active = nil
	} else if n := len(m.segments); n > 0 && m.segments[n-1].size < m.opts.SegmentBytes {
		// First append of this process: resume the replayed tail
		// segment in place.
		seg := m.segments[n-1]
		f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("persist: %w", err)
		}
		m.walFile = f
		m.active = seg
		return nil
	}
	seq := uint64(1)
	if n := len(m.segments); n > 0 {
		seq = m.segments[n-1].seq + 1
	}
	seg := &segment{
		path:  filepath.Join(m.opts.Dir, fmt.Sprintf("wal-%016x.log", seq)),
		seq:   seq,
		known: true, // created by this process; coverage fully tracked
	}
	f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(walMagic); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	seg.size = int64(len(walMagic))
	m.segments = append(m.segments, seg)
	m.walFile = f
	m.active = seg
	if m.opts.Fsync {
		_ = fsyncDir(m.opts.Dir)
	}
	return nil
}

// SaveCheckpoint persists the exported snapshot as the new durable
// baseline: write to a temporary, fsync, atomically rename into place,
// then prune checkpoints beyond the retained history and every WAL
// segment whose records the retained checkpoints all cover. A crash at
// any point leaves the previous checkpoint intact.
func (m *Manager) SaveCheckpoint(meta CheckpointMeta, data profilestore.SnapshotData) (err error) {
	start := time.Now()
	defer func() {
		m.ckptHist.Observe(time.Since(start))
		m.offerBG("bg/checkpoint", "save", start, err)
	}()
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	final := filepath.Join(m.opts.Dir, fmt.Sprintf("checkpoint-%016x.ckpt", meta.Gen))
	tmp := final + ".tmp"
	if err := m.writeCheckpointFile(tmp, meta, data); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if m.opts.Fsync {
		_ = fsyncDir(m.opts.Dir)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.hasCkpt || meta.Gen >= m.ckpt.Gen {
		m.ckpt = meta
		m.hasCkpt = true
	}
	m.ckpts = append(m.ckpts, ckptFile{path: final, gen: meta.Gen})
	sort.Slice(m.ckpts, func(a, b int) bool { return m.ckpts[a].gen < m.ckpts[b].gen })
	for len(m.ckpts) > keepCheckpoints {
		old := m.ckpts[0]
		m.ckpts = m.ckpts[1:]
		if err := os.Remove(old.path); err != nil && !os.IsNotExist(err) {
			m.logger.Printf("persist: pruning checkpoint %s: %v", filepath.Base(old.path), err)
		}
	}
	// WAL pruning keys off the OLDEST retained checkpoint: if recovery
	// ever has to fall back past the newest, the records that fallback
	// needs must still exist.
	pruneGen := m.ckpts[0].gen
	keep := m.segments[:0]
	for _, seg := range m.segments {
		if seg != m.active && seg.known && seg.lastGen < pruneGen {
			if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				m.logger.Printf("persist: pruning segment %s: %v", filepath.Base(seg.path), err)
				keep = append(keep, seg)
			}
			continue
		}
		keep = append(keep, seg)
	}
	m.segments = keep
	return nil
}

func (m *Manager) writeCheckpointFile(path string, meta CheckpointMeta, data profilestore.SnapshotData) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := WriteSnapshot(bw, meta, data); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	// The pre-rename fsync is unconditional: rename-before-content is
	// the one reordering that can produce a *valid-looking* truncated
	// checkpoint after a machine crash, and it costs one sync per
	// checkpoint, not per ack.
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// Close releases the active WAL file handle (final fsync under the
// policy). The Manager is not usable afterwards.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.walFile == nil {
		return nil
	}
	if m.pendingTrunc >= 0 {
		// Last chance to roll back a torn tail; if it still fails,
		// recovery's torn-tail truncation handles it (the frame is at
		// the end of the final segment, where recovery repairs).
		if err := m.walFile.Truncate(m.pendingTrunc); err == nil {
			m.active.size = m.pendingTrunc
			m.pendingTrunc = -1
		}
	}
	if m.opts.Fsync {
		_ = m.walFile.Sync()
	}
	err := m.walFile.Close()
	m.walFile = nil
	m.active = nil
	return err
}

// Stats snapshots the durable-state bookkeeping.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Dir:               m.opts.Dir,
		Fsync:             m.opts.Fsync,
		CheckpointGen:     m.ckpt.Gen,
		CheckpointEpoch:   m.ckpt.Epoch,
		Checkpoints:       len(m.ckpts),
		WALSegments:       len(m.segments),
		WALAppends:        m.appends,
		Recovered:         m.recovered,
		ReplayedRecords:   m.replayedRecords,
		ReplayedEvents:    m.replayedEvents,
		TornTailTruncated: m.tornTail,
	}
	for _, seg := range m.segments {
		st.WALBytes += seg.size
	}
	return st
}

// WALAppendHist returns the live Append-latency histogram for
// exposition.
func (m *Manager) WALAppendHist() *obs.Histogram { return &m.walHist }

// CheckpointHist returns the live SaveCheckpoint-duration histogram for
// exposition.
func (m *Manager) CheckpointHist() *obs.Histogram { return &m.ckptHist }

func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }()
	return d.Sync()
}
