package tags

import "sort"

// Cooccurrence counts pairwise tag co-occurrence within tag sets. The
// related-videos graph builder uses it to wire "videos that share rare
// tags" together, mimicking YouTube's relatedness signal.
type Cooccurrence struct {
	pairs  map[[2]int]int
	counts map[int]int
	sets   int
}

// NewCooccurrence returns an empty counter.
func NewCooccurrence() *Cooccurrence {
	return &Cooccurrence{
		pairs:  make(map[[2]int]int),
		counts: make(map[int]int),
	}
}

// AddSet folds one video's tag set (vocabulary indices) into the counts.
// Duplicate indices within one set are counted once.
func (c *Cooccurrence) AddSet(set []int) {
	uniq := append([]int(nil), set...)
	sort.Ints(uniq)
	w := uniq[:0]
	for i, v := range uniq {
		if i == 0 || uniq[i-1] != v {
			w = append(w, v)
		}
	}
	uniq = w
	c.sets++
	for i, a := range uniq {
		c.counts[a]++
		for _, b := range uniq[i+1:] {
			c.pairs[[2]int{a, b}]++
		}
	}
}

// Sets returns the number of sets folded in.
func (c *Cooccurrence) Sets() int { return c.sets }

// Count returns how many sets contained tag t.
func (c *Cooccurrence) Count(t int) int { return c.counts[t] }

// Pair returns how many sets contained both a and b.
func (c *Cooccurrence) Pair(a, b int) int {
	if a == b {
		return c.counts[a]
	}
	if a > b {
		a, b = b, a
	}
	return c.pairs[[2]int{a, b}]
}

// Jaccard returns |sets(a) ∩ sets(b)| / |sets(a) ∪ sets(b)|, the standard
// co-occurrence similarity; 0 when either tag is unseen.
func (c *Cooccurrence) Jaccard(a, b int) float64 {
	inter := c.Pair(a, b)
	union := c.counts[a] + c.counts[b] - inter
	if union <= 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
