package tags

import (
	"strconv"
	"strings"

	"viewstags/internal/xrand"
)

// nameGen synthesizes plausible tag strings. Each language cluster gets
// its own syllable inventory so the synthetic vocabulary "reads" like a
// multilingual folksonomy rather than random bytes — which also exercises
// the normalization path with realistic inputs.
type nameGen struct {
	src *xrand.Source
}

func newNameGen(src *xrand.Source) *nameGen {
	return &nameGen{src: src}
}

// syllables returns the inventory for a language cluster key; unknown
// clusters use a neutral inventory.
func syllables(lang string) []string {
	switch lang {
	case "pt":
		return []string{"ca", "ri", "o", "fa", "ve", "la", "sam", "ba", "do", "bra", "zu", "mor", "ro", "nho", "gol"}
	case "es":
		return []string{"el", "la", "cor", "ri", "da", "fue", "go", "ce", "le", "bre", "mun", "do", "can", "ta"}
	case "fr":
		return []string{"le", "mon", "de", "pa", "ri", "chan", "son", "vé", "lo", "bleu", "coeur", "nuit"}
	case "de":
		return []string{"der", "schau", "spiel", "lich", "berg", "wald", "lied", "zeit", "fest", "bahn"}
	case "ja":
		return []string{"ka", "wa", "ii", "to", "kyo", "sa", "ku", "ra", "ne", "ko", "man", "ga"}
	case "ko":
		return []string{"han", "gug", "seo", "ul", "no", "rae", "chum", "gi", "mu", "dae"}
	case "ru":
		return []string{"mos", "kva", "pes", "nya", "zhi", "vot", "koto", "rusk", "da", "net"}
	case "hi":
		return []string{"bha", "rat", "ga", "na", "fil", "mi", "des", "hi", "ma", "sa", "la"}
	case "zh":
		return []string{"zhong", "guo", "hua", "mei", "xi", "ju", "ge", "wu", "dian", "ying"}
	case "ar":
		return []string{"al", "ma", "ka", "bir", "sha", "riq", "ha", "bi", "bi", "nur"}
	default:
		return []string{"ta", "ke", "lo", "mi", "ra", "zen", "po", "vu", "na", "si", "ko", "da", "fi", "ru"}
	}
}

// word synthesizes one 2–4 syllable word in the given language flavor.
func (g *nameGen) word(lang string) string {
	syl := syllables(lang)
	n := 2 + g.src.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syl[g.src.Intn(len(syl))])
	}
	return b.String()
}

// unique returns a synthesized tag name not already present in taken.
// After a few collisions it falls back to a numeric suffix, which is
// guaranteed fresh.
func (g *nameGen) unique(taken map[string]int, lang string) string {
	for attempt := 0; attempt < 8; attempt++ {
		w := g.word(lang)
		if _, dup := taken[w]; !dup {
			return w
		}
	}
	base := g.word(lang)
	for i := 2; ; i++ {
		w := base + strconv.Itoa(i)
		if _, dup := taken[w]; !dup {
			return w
		}
	}
}

// NormalizeName canonicalizes a raw tag string the way the analysis
// pipeline keys tags: lower-cased, surrounding whitespace trimmed, inner
// whitespace runs collapsed to single spaces.
func NormalizeName(raw string) string {
	return strings.Join(strings.Fields(strings.ToLower(raw)), " ")
}

// SplitTagList splits a comma-separated tag attribute (the GData wire
// form) into normalized, deduplicated tag names, preserving first-seen
// order. Empty fragments are dropped.
func SplitTagList(raw string) []string {
	parts := strings.Split(raw, ",")
	seen := make(map[string]bool, len(parts))
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		n := NormalizeName(p)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// JoinTagList renders tag names as the comma-separated GData wire form.
func JoinTagList(names []string) string {
	return strings.Join(names, ",")
}
