package tags

import (
	"math"
	"testing"
	"testing/quick"

	"viewstags/internal/dist"
	"viewstags/internal/geo"
	"viewstags/internal/xrand"
)

func testVocab(t *testing.T, size int) *Vocabulary {
	t.Helper()
	w := geo.DefaultWorld()
	v, err := NewVocabulary(w, xrand.NewSource(1234), DefaultConfig(size))
	if err != nil {
		t.Fatalf("NewVocabulary: %v", err)
	}
	return v
}

func TestVocabularySizeAndUniqueNames(t *testing.T) {
	v := testVocab(t, 2000)
	if v.N() != 2000 {
		t.Fatalf("N = %d", v.N())
	}
	seen := make(map[string]bool, v.N())
	for i := 0; i < v.N(); i++ {
		name := v.Name(i)
		if name == "" {
			t.Fatalf("tag %d has empty name", i)
		}
		if seen[name] {
			t.Fatalf("duplicate tag name %q", name)
		}
		seen[name] = true
	}
}

func TestVocabularyDeterministic(t *testing.T) {
	w := geo.DefaultWorld()
	a, err := NewVocabulary(w, xrand.NewSource(7), DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewVocabulary(w, xrand.NewSource(7), DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		if a.Name(i) != b.Name(i) || a.Tag(i).Class != b.Tag(i).Class {
			t.Fatalf("vocabulary not deterministic at %d", i)
		}
	}
}

func TestByNameRoundTrip(t *testing.T) {
	v := testVocab(t, 300)
	for i := 0; i < v.N(); i++ {
		j, ok := v.ByName(v.Name(i))
		if !ok || j != i {
			t.Fatalf("ByName(%q) = %d,%v want %d", v.Name(i), j, ok, i)
		}
	}
	if _, ok := v.ByName("definitely-not-a-tag-xyz"); ok {
		t.Fatal("ByName accepted unknown name")
	}
}

func TestCuratedTagsPresent(t *testing.T) {
	v := testVocab(t, 200)
	w := v.World()
	i, ok := v.ByName("favela")
	if !ok {
		t.Fatal("curated tag 'favela' missing")
	}
	tg := v.Tag(i)
	if tg.Class != ClassLocal {
		t.Fatalf("favela class = %v", tg.Class)
	}
	if w.Country(tg.Anchor).Code != "BR" {
		t.Fatalf("favela anchored at %s, want BR", w.Country(tg.Anchor).Code)
	}
	j, ok := v.ByName("pop")
	if !ok {
		t.Fatal("curated tag 'pop' missing")
	}
	if v.Tag(j).Class != ClassGlobal {
		t.Fatalf("pop class = %v", v.Tag(j).Class)
	}
	if j > 15 {
		t.Fatalf("'pop' at rank %d; should be near the usage-frequency head", j)
	}
}

func TestClassMixRoughlyRespected(t *testing.T) {
	v := testVocab(t, 5000)
	counts := map[Class]int{}
	for i := 0; i < v.N(); i++ {
		counts[v.Tag(i).Class]++
	}
	fracLocal := float64(counts[ClassLocal]) / float64(v.N())
	fracRegional := float64(counts[ClassRegional]) / float64(v.N())
	if math.Abs(fracLocal-0.55) > 0.05 {
		t.Errorf("local fraction = %v, want ~0.55", fracLocal)
	}
	if math.Abs(fracRegional-0.30) > 0.05 {
		t.Errorf("regional fraction = %v, want ~0.30", fracRegional)
	}
}

func TestHeadIsGlobalHeavy(t *testing.T) {
	// The usage-frequency head must skew global relative to the tail
	// (the curated head contributes some famous local tags, so the
	// comparison is head share vs tail share, not an absolute count).
	v := testVocab(t, 5000)
	classFrac := func(lo, hi int) float64 {
		globals := 0
		for i := lo; i < hi; i++ {
			if v.Tag(i).Class == ClassGlobal {
				globals++
			}
		}
		return float64(globals) / float64(hi-lo)
	}
	head := classFrac(0, 100)
	tail := classFrac(1000, v.N())
	if head < 0.40 {
		t.Fatalf("only %.0f%% of the top-100 tags are global", 100*head)
	}
	if head <= 2*tail {
		t.Fatalf("head global fraction %.2f not well above tail %.2f", head, tail)
	}
}

func TestAffinityIsDistribution(t *testing.T) {
	v := testVocab(t, 500)
	for _, i := range []int{0, 1, 50, 200, 499} {
		a := v.Affinity(i)
		if len(a) != v.World().N() {
			t.Fatalf("affinity length %d", len(a))
		}
		var sum float64
		for _, x := range a {
			if x < 0 {
				t.Fatalf("negative affinity for tag %d", i)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("affinity of tag %d sums to %v", i, sum)
		}
	}
}

func TestAffinityClassShapes(t *testing.T) {
	v := testVocab(t, 500)
	w := v.World()

	// favela: local, Brazil-dominated.
	fi, _ := v.ByName("favela")
	fa := v.Affinity(fi)
	br := w.MustByCode("BR")
	if dist.ArgMax(fa) != int(br) {
		t.Fatalf("favela affinity peaks at %s", w.Country(geo.CountryID(dist.ArgMax(fa))).Code)
	}
	if fa[br] < 0.8 {
		t.Fatalf("favela BR mass = %v, want >= 0.8", fa[br])
	}

	// pop: global — must match the traffic prior exactly.
	pi, _ := v.ByName("pop")
	pa := v.Affinity(pi)
	prior := w.Traffic()
	for c := range prior {
		if math.Abs(pa[c]-prior[c]) > 1e-12 {
			t.Fatalf("pop affinity deviates from prior at country %d", c)
		}
	}

	// kpop: regional — Korean cluster should hold most of the mass.
	ki, _ := v.ByName("kpop")
	ka := v.Affinity(ki)
	kr := w.MustByCode("KR")
	if ka[kr] < 0.5 {
		t.Fatalf("kpop KR mass = %v", ka[kr])
	}
}

func TestAffinitySpreadClassesAgree(t *testing.T) {
	v := testVocab(t, 500)
	fi, _ := v.ByName("favela")
	if got := dist.Classify(v.Affinity(fi)); got != dist.SpreadLocal {
		t.Fatalf("favela classified %v", got)
	}
	pi, _ := v.ByName("pop")
	if got := dist.Classify(v.Affinity(pi)); got != dist.SpreadGlobal {
		t.Fatalf("pop classified %v", got)
	}
}

func TestSampleTagSetProperties(t *testing.T) {
	v := testVocab(t, 2000)
	src := xrand.NewSource(99)
	us := v.World().MustByCode("US")
	cfg := DefaultTagSetConfig()
	sizes := 0
	for trial := 0; trial < 500; trial++ {
		set := v.SampleTagSet(src, us, cfg)
		if len(set) == 0 {
			t.Fatal("empty tag set")
		}
		if len(set) > cfg.MaxTags {
			t.Fatalf("tag set size %d exceeds cap %d", len(set), cfg.MaxTags)
		}
		seen := make(map[int]bool)
		for _, idx := range set {
			if idx < 0 || idx >= v.N() {
				t.Fatalf("tag index %d out of range", idx)
			}
			if seen[idx] {
				t.Fatalf("duplicate tag in set: %d", idx)
			}
			seen[idx] = true
		}
		sizes += len(set)
	}
	mean := float64(sizes) / 500
	if mean < 4 || mean > 15 {
		t.Fatalf("mean tag-set size %v outside plausible band around %d", mean, cfg.MeanTags)
	}
}

func TestSampleTagSetUploadBias(t *testing.T) {
	v := testVocab(t, 5000)
	w := v.World()
	br := w.MustByCode("BR")
	jp := w.MustByCode("JP")
	src := xrand.NewSource(7)

	anchoredAt := func(upload geo.CountryID, anchor geo.CountryID) int {
		n := 0
		for trial := 0; trial < 300; trial++ {
			for _, idx := range v.SampleTagSet(src, upload, DefaultTagSetConfig()) {
				tg := v.Tag(idx)
				if tg.Class == ClassLocal && tg.Anchor == anchor {
					n++
				}
			}
		}
		return n
	}
	brFromBR := anchoredAt(br, br)
	brFromJP := anchoredAt(jp, br)
	if brFromBR <= 2*brFromJP {
		t.Fatalf("BR uploads picked %d BR-local tags vs %d from JP uploads; expected strong locale bias", brFromBR, brFromJP)
	}
}

func TestVocabularyConfigErrors(t *testing.T) {
	w := geo.DefaultWorld()
	if _, err := NewVocabulary(w, xrand.NewSource(1), DefaultConfig(3)); err == nil {
		t.Fatal("size below curated head accepted")
	}
	bad := DefaultConfig(100)
	bad.LocalFrac = 0.8
	bad.RegionalFrac = 0.5
	if _, err := NewVocabulary(w, xrand.NewSource(1), bad); err == nil {
		t.Fatal("class mix > 1 accepted")
	}
	neg := DefaultConfig(100)
	neg.ZipfExponent = -1
	if _, err := NewVocabulary(w, xrand.NewSource(1), neg); err == nil {
		t.Fatal("negative exponent accepted")
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"  Funny  Cats ": "funny cats",
		"POP":            "pop",
		"a\tb\nc":        "a b c",
		"":               "",
		"   ":            "",
	}
	for in, want := range cases {
		if got := NormalizeName(in); got != want {
			t.Errorf("NormalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplitTagList(t *testing.T) {
	got := SplitTagList("Pop, rock ,POP,, Live  Music ")
	want := []string{"pop", "rock", "live music"}
	if len(got) != len(want) {
		t.Fatalf("SplitTagList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitTagList = %v, want %v", got, want)
		}
	}
}

func TestSplitJoinRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		// Build a list of clean names from bytes.
		names := []string{}
		seen := map[string]bool{}
		for _, b := range raw {
			n := "t" + string(rune('a'+int(b%26)))
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
		round := SplitTagList(JoinTagList(names))
		if len(round) != len(names) {
			return false
		}
		for i := range names {
			if round[i] != names[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCooccurrence(t *testing.T) {
	c := NewCooccurrence()
	c.AddSet([]int{1, 2, 3})
	c.AddSet([]int{2, 3})
	c.AddSet([]int{3, 3, 3}) // duplicates count once
	if c.Sets() != 3 {
		t.Fatalf("Sets = %d", c.Sets())
	}
	if c.Count(3) != 3 || c.Count(1) != 1 {
		t.Fatalf("counts = %d,%d", c.Count(3), c.Count(1))
	}
	if c.Pair(2, 3) != 2 || c.Pair(3, 2) != 2 {
		t.Fatalf("pair(2,3) = %d", c.Pair(2, 3))
	}
	if c.Pair(1, 3) != 1 {
		t.Fatalf("pair(1,3) = %d", c.Pair(1, 3))
	}
	if c.Pair(5, 6) != 0 {
		t.Fatal("unseen pair non-zero")
	}
	if j := c.Jaccard(2, 3); math.Abs(j-2.0/3.0) > 1e-12 {
		t.Fatalf("jaccard(2,3) = %v", j)
	}
	if j := c.Jaccard(7, 8); j != 0 {
		t.Fatalf("jaccard of unseen = %v", j)
	}
}

func TestUsageProbSumsToOne(t *testing.T) {
	v := testVocab(t, 400)
	var sum float64
	for i := 0; i < v.N(); i++ {
		sum += v.UsageProb(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("usage probs sum to %v", sum)
	}
}
