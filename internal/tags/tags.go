// Package tags models the YouTube tag ecosystem the paper measures: a
// Zipf-distributed vocabulary in which each tag carries a latent
// geographic affinity. The affinity classes mirror the paper's
// observation (§3, Figs. 2–3): some tags are viewed mainly in particular
// countries ("favela" → Brazil), some cluster on a language community,
// and some follow the world distribution of YouTube users ("pop").
//
// The vocabulary is the generative ground truth of the reproduction: the
// synthetic catalog builder (internal/synth) samples each video's tag set
// and geographic view field from it, and the analysis pipeline
// (internal/tagviews) then has to re-discover these affinities from the
// quantized popularity vectors alone — exactly the paper's task.
package tags

import (
	"fmt"
	"sort"

	"viewstags/internal/geo"
	"viewstags/internal/xrand"
)

// Class is a tag's latent geographic affinity class.
type Class int

// Affinity classes. Enums start at one so the zero value is invalid.
const (
	ClassInvalid  Class = iota
	ClassLocal          // anchored on a single country
	ClassRegional       // anchored on a language cluster
	ClassGlobal         // follows the global traffic prior
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassLocal:
		return "local"
	case ClassRegional:
		return "regional"
	case ClassGlobal:
		return "global"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Tag is one vocabulary entry. Affinity data is stored sparsely (anchor +
// background mass) so that paper-scale vocabularies (705k tags) do not
// need a dense tags×countries matrix.
type Tag struct {
	Name     string
	Class    Class
	Anchor   geo.CountryID // anchor country (local) or cluster exemplar (regional)
	Language string        // language cluster key for regional tags
	// AnchorMass is the fraction of the tag's affinity concentrated on
	// the anchor (local) or cluster (regional); the remainder follows the
	// global traffic prior. Global tags have AnchorMass 0.
	AnchorMass float64
}

// Config parameterizes vocabulary generation. DefaultConfig gives the
// values DESIGN.md fixes for the reproduction.
type Config struct {
	Size int // number of tags

	ZipfExponent float64 // tag usage frequency skew

	// Class mix for tail tags; head ranks are biased toward global (the
	// most used tags — music, funny, pop — are globally consumed).
	LocalFrac    float64
	RegionalFrac float64
	// GlobalFrac is the remainder.

	// HeadGlobalBoost is the probability that one of the first
	// HeadGlobalRanks tags is forced global regardless of the mix.
	HeadGlobalBoost float64
	HeadGlobalRanks int

	// Anchor concentration: Beta-ish mass drawn uniformly in
	// [AnchorMassLo, AnchorMassHi].
	AnchorMassLo float64
	AnchorMassHi float64
}

// DefaultConfig returns the standard vocabulary configuration.
func DefaultConfig(size int) Config {
	return Config{
		Size:            size,
		ZipfExponent:    1.02, // tag usage is near-Zipf(1) in tagging studies [Geisler & Burns 2007]
		LocalFrac:       0.55,
		RegionalFrac:    0.30,
		HeadGlobalBoost: 0.75,
		HeadGlobalRanks: 128,
		AnchorMassLo:    0.60,
		AnchorMassHi:    0.95,
	}
}

// Vocabulary is an immutable generated tag vocabulary with lookup and
// sampling indexes.
type Vocabulary struct {
	world  *geo.World
	tags   []Tag
	byName map[string]int
	freq   *xrand.Zipf // usage frequency over ranks == indices

	// Sampling indexes: tags grouped by anchor country / language, with
	// intra-group categorical samplers weighted by usage frequency.
	byAnchor    map[geo.CountryID][]int
	byLanguage  map[string][]int
	anchorCat   map[geo.CountryID]*xrand.Categorical
	languageCat map[string]*xrand.Categorical
	globalIdx   []int
	globalCat   *xrand.Categorical
}

// curatedTag pins a real tag name from the paper's figures (and a few
// companions) to a fixed class and anchor so figures and examples can
// refer to them by name.
type curatedTag struct {
	name   string
	class  Class
	anchor string // ISO code; anchor country for local, exemplar for regional
	lang   string
	mass   float64
}

// curated returns the pinned head of the vocabulary. Order matters: it
// defines usage-frequency ranks 0..len-1, and "pop" is placed so that it
// plausibly lands as one of the most-viewed tags (the paper reports it as
// the second most viewed).
func curated() []curatedTag {
	return []curatedTag{
		{name: "music", class: ClassGlobal},
		{name: "pop", class: ClassGlobal},
		{name: "funny", class: ClassGlobal},
		{name: "live", class: ClassGlobal},
		{name: "video", class: ClassGlobal},
		{name: "2011", class: ClassGlobal},
		{name: "news", class: ClassGlobal},
		{name: "dance", class: ClassGlobal},
		{name: "rock", class: ClassGlobal},
		{name: "hd", class: ClassGlobal},
		{name: "futebol", class: ClassRegional, anchor: "BR", lang: "pt", mass: 0.85},
		{name: "anime", class: ClassRegional, anchor: "JP", lang: "ja", mass: 0.7},
		{name: "kpop", class: ClassRegional, anchor: "KR", lang: "ko", mass: 0.8},
		{name: "telenovela", class: ClassRegional, anchor: "MX", lang: "es", mass: 0.85},
		{name: "chanson", class: ClassRegional, anchor: "FR", lang: "fr", mass: 0.85},
		{name: "schlager", class: ClassRegional, anchor: "DE", lang: "de", mass: 0.85},
		{name: "favela", class: ClassLocal, anchor: "BR", mass: 0.95},
		{name: "samba", class: ClassLocal, anchor: "BR", mass: 0.85},
		{name: "carnaval", class: ClassLocal, anchor: "BR", mass: 0.80},
		{name: "cricket", class: ClassLocal, anchor: "IN", mass: 0.80},
		{name: "bollywood", class: ClassLocal, anchor: "IN", mass: 0.85},
		{name: "diwali", class: ClassLocal, anchor: "IN", mass: 0.88},
		{name: "sumo", class: ClassLocal, anchor: "JP", mass: 0.90},
		{name: "manga", class: ClassRegional, anchor: "JP", lang: "ja", mass: 0.70},
		{name: "mariachi", class: ClassLocal, anchor: "MX", mass: 0.88},
		{name: "tango", class: ClassLocal, anchor: "AR", mass: 0.85},
		{name: "flamenco", class: ClassLocal, anchor: "ES", mass: 0.85},
		{name: "hurling", class: ClassLocal, anchor: "IE", mass: 0.93},
		{name: "haka", class: ClassLocal, anchor: "NZ", mass: 0.90},
		{name: "fado", class: ClassLocal, anchor: "PT", mass: 0.90},
		{name: "oktoberfest", class: ClassLocal, anchor: "DE", mass: 0.82},
		{name: "nollywood", class: ClassLocal, anchor: "NG", mass: 0.90},
		{name: "balalaika", class: ClassLocal, anchor: "RU", mass: 0.90},
		{name: "muaythai", class: ClassLocal, anchor: "TH", mass: 0.85},
		{name: "dangdut", class: ClassLocal, anchor: "ID", mass: 0.92},
		{name: "cumbia", class: ClassRegional, anchor: "CO", lang: "es", mass: 0.80},
		{name: "rai", class: ClassRegional, anchor: "MA", lang: "ar", mass: 0.80},
	}
}

// NewVocabulary generates a vocabulary of cfg.Size tags over the given
// world, deterministically from src. It returns an error for a
// non-positive size or a size smaller than the curated head.
func NewVocabulary(world *geo.World, src *xrand.Source, cfg Config) (*Vocabulary, error) {
	head := curated()
	if cfg.Size < len(head) {
		return nil, fmt.Errorf("tags: vocabulary size %d smaller than curated head %d", cfg.Size, len(head))
	}
	if cfg.ZipfExponent < 0 {
		return nil, fmt.Errorf("tags: negative Zipf exponent %v", cfg.ZipfExponent)
	}
	if cfg.LocalFrac < 0 || cfg.RegionalFrac < 0 || cfg.LocalFrac+cfg.RegionalFrac > 1 {
		return nil, fmt.Errorf("tags: invalid class mix local=%v regional=%v", cfg.LocalFrac, cfg.RegionalFrac)
	}

	v := &Vocabulary{
		world:  world,
		tags:   make([]Tag, 0, cfg.Size),
		byName: make(map[string]int, cfg.Size),
	}
	classSrc := src.Fork("class")
	nameSrc := src.Fork("name")
	anchorSrc := src.Fork("anchor")

	countryCat := xrand.NewCategorical(anchorSrc.Fork("country"), world.Traffic())

	for _, c := range head {
		t := Tag{Name: c.name, Class: c.class, AnchorMass: c.mass, Language: c.lang}
		if c.anchor != "" {
			id, ok := world.ByCode(c.anchor)
			if !ok {
				return nil, fmt.Errorf("tags: curated tag %q anchored at unknown country %q", c.name, c.anchor)
			}
			t.Anchor = id
			if t.Language == "" {
				t.Language = world.Country(id).Language
			}
		}
		v.append(t)
	}

	gen := newNameGen(nameSrc)
	for len(v.tags) < cfg.Size {
		rank := len(v.tags)
		class := sampleClass(classSrc, cfg, rank)
		t := Tag{Class: class}
		switch class {
		case ClassGlobal:
			// No anchor; follows the prior.
		case ClassRegional:
			// Anchor on a language cluster, exemplified by a
			// traffic-weighted member country.
			anchor := geo.CountryID(countryCat.Draw())
			t.Anchor = anchor
			t.Language = world.Country(anchor).Language
			t.AnchorMass = cfg.AnchorMassLo + (cfg.AnchorMassHi-cfg.AnchorMassLo)*anchorSrc.Float64()
		case ClassLocal:
			anchor := geo.CountryID(countryCat.Draw())
			t.Anchor = anchor
			t.Language = world.Country(anchor).Language
			t.AnchorMass = cfg.AnchorMassLo + (cfg.AnchorMassHi-cfg.AnchorMassLo)*anchorSrc.Float64()
		}
		t.Name = gen.unique(v.byName, t.Language)
		v.append(t)
	}

	v.freq = xrand.NewZipf(src.Fork("freq"), cfg.ZipfExponent, len(v.tags))
	v.buildIndexes(src.Fork("index"))
	return v, nil
}

func (v *Vocabulary) append(t Tag) {
	v.byName[t.Name] = len(v.tags)
	v.tags = append(v.tags, t)
}

func sampleClass(src *xrand.Source, cfg Config, rank int) Class {
	if rank < cfg.HeadGlobalRanks && src.Bernoulli(cfg.HeadGlobalBoost) {
		return ClassGlobal
	}
	u := src.Float64()
	switch {
	case u < cfg.LocalFrac:
		return ClassLocal
	case u < cfg.LocalFrac+cfg.RegionalFrac:
		return ClassRegional
	default:
		return ClassGlobal
	}
}

func (v *Vocabulary) buildIndexes(src *xrand.Source) {
	v.byAnchor = make(map[geo.CountryID][]int)
	v.byLanguage = make(map[string][]int)
	for i, t := range v.tags {
		switch t.Class {
		case ClassLocal:
			v.byAnchor[t.Anchor] = append(v.byAnchor[t.Anchor], i)
		case ClassRegional:
			v.byLanguage[t.Language] = append(v.byLanguage[t.Language], i)
		case ClassGlobal:
			v.globalIdx = append(v.globalIdx, i)
		}
	}
	v.anchorCat = make(map[geo.CountryID]*xrand.Categorical, len(v.byAnchor))
	for c, idxs := range v.byAnchor {
		v.anchorCat[c] = xrand.NewCategorical(src.Fork("anchor/"+v.world.Country(c).Code), v.freqWeights(idxs))
	}
	v.languageCat = make(map[string]*xrand.Categorical, len(v.byLanguage))
	for lang, idxs := range v.byLanguage {
		v.languageCat[lang] = xrand.NewCategorical(src.Fork("lang/"+lang), v.freqWeights(idxs))
	}
	if len(v.globalIdx) > 0 {
		v.globalCat = xrand.NewCategorical(src.Fork("global"), v.freqWeights(v.globalIdx))
	}
}

func (v *Vocabulary) freqWeights(idxs []int) []float64 {
	ws := make([]float64, len(idxs))
	for j, i := range idxs {
		ws[j] = v.freq.Prob(i)
	}
	return ws
}

// N returns the vocabulary size.
func (v *Vocabulary) N() int { return len(v.tags) }

// Tag returns the i-th tag record.
func (v *Vocabulary) Tag(i int) Tag { return v.tags[i] }

// Name returns the i-th tag's name.
func (v *Vocabulary) Name(i int) string { return v.tags[i].Name }

// ByName resolves a (normalized) tag name to its vocabulary index.
func (v *Vocabulary) ByName(name string) (int, bool) {
	i, ok := v.byName[name]
	return i, ok
}

// UsageProb returns the prior usage probability of tag i (Zipf mass).
func (v *Vocabulary) UsageProb(i int) float64 { return v.freq.Prob(i) }

// World returns the world the vocabulary was generated over.
func (v *Vocabulary) World() *geo.World { return v.world }

// Affinity returns tag i's ground-truth geographic affinity as a dense
// normalized distribution over countries: AnchorMass on the anchor (local)
// or spread over the language cluster proportionally to traffic
// (regional), with the remaining mass following the global traffic prior.
func (v *Vocabulary) Affinity(i int) []float64 {
	t := v.tags[i]
	prior := v.world.Traffic()
	out := make([]float64, len(prior))
	switch t.Class {
	case ClassGlobal:
		copy(out, prior)
		return out
	case ClassLocal:
		for c := range out {
			out[c] = (1 - t.AnchorMass) * prior[c]
		}
		out[t.Anchor] += t.AnchorMass
		return out
	case ClassRegional:
		peers := v.world.LanguagePeers(t.Language)
		var clusterTraffic float64
		for _, p := range peers {
			clusterTraffic += prior[p]
		}
		for c := range out {
			out[c] = (1 - t.AnchorMass) * prior[c]
		}
		if clusterTraffic > 0 {
			for _, p := range peers {
				out[p] += t.AnchorMass * prior[p] / clusterTraffic
			}
		} else {
			out[t.Anchor] += t.AnchorMass
		}
		return out
	default:
		copy(out, prior)
		return out
	}
}

// TagSetConfig controls per-video tag-set sampling.
type TagSetConfig struct {
	MeanTags     int     // mean tag-set size (geometric), >= 1
	MaxTags      int     // hard cap (YouTube's 2011 limit was ~120 chars of tags; we cap count)
	LocalBias    float64 // probability that a draw favors upload-locale tags
	RegionalBias float64 // probability that a draw favors same-language tags
}

// DefaultTagSetConfig returns the standard tag-set sampling parameters.
func DefaultTagSetConfig() TagSetConfig {
	return TagSetConfig{MeanTags: 9, MaxTags: 30, LocalBias: 0.35, RegionalBias: 0.25}
}

// SampleTagSet draws a tag set for a video uploaded from the given
// country: a geometric-size set whose members are biased toward tags
// anchored at the uploader's country and language, the rest drawn from
// the global pool. The result is deduplicated, non-empty, and at most
// cfg.MaxTags long.
func (v *Vocabulary) SampleTagSet(src *xrand.Source, upload geo.CountryID, cfg TagSetConfig) []int {
	if cfg.MeanTags < 1 {
		cfg.MeanTags = 1
	}
	if cfg.MaxTags < 1 {
		cfg.MaxTags = 1
	}
	// Geometric size with mean cfg.MeanTags, clamped to [1, MaxTags].
	size := 1
	p := 1 / float64(cfg.MeanTags)
	for size < cfg.MaxTags && !src.Bernoulli(p) {
		size++
	}
	lang := v.world.Country(upload).Language
	seen := make(map[int]bool, size)
	out := make([]int, 0, size)
	// Bound the attempts so tiny vocabularies cannot loop forever.
	for attempts := 0; len(out) < size && attempts < 20*size; attempts++ {
		var idx int
		u := src.Float64()
		switch {
		case u < cfg.LocalBias && v.anchorCat[upload] != nil:
			idx = v.byAnchor[upload][v.anchorCat[upload].Draw()]
		case u < cfg.LocalBias+cfg.RegionalBias && v.languageCat[lang] != nil:
			idx = v.byLanguage[lang][v.languageCat[lang].Draw()]
		case v.globalCat != nil:
			idx = v.globalIdx[v.globalCat.Draw()]
		default:
			idx = v.freqSample(src)
		}
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	if len(out) == 0 {
		out = append(out, v.freqSample(src))
	}
	v.sortTopicalFirst(out, upload)
	return out
}

// sortTopicalFirst stable-sorts a tag set so the most geographically
// specific tags lead: local tags anchored at the uploader's country,
// then other local tags, regional, and finally global tags. This mirrors
// how uploaders front-load topical tags, and the synthetic view model
// weights leading tags more — together they encode the paper's premise
// that a video's topical tags dominate its viewing geography.
func (v *Vocabulary) sortTopicalFirst(set []int, upload geo.CountryID) {
	rank := func(idx int) int {
		t := v.tags[idx]
		switch t.Class {
		case ClassLocal:
			if t.Anchor == upload {
				return 0
			}
			return 1
		case ClassRegional:
			return 2
		default:
			return 3
		}
	}
	sort.SliceStable(set, func(a, b int) bool { return rank(set[a]) < rank(set[b]) })
}

// freqSample draws a tag by raw usage frequency, ignoring geography. The
// draw consumes the caller's stream (not the Zipf sampler's own) so each
// consumer stays independently deterministic.
func (v *Vocabulary) freqSample(src *xrand.Source) int {
	u := src.Float64()
	lo, hi := 0, v.freq.N()-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v.freq.CDF(mid) < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
