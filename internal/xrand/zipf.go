package xrand

import "math"

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, i.e. a bounded Zipf (zeta) distribution. It precomputes
// the CDF once, so sampling is O(log n) by binary search; construction is
// O(n). This matches how the repository uses Zipf: a fixed vocabulary or
// catalog is built once and sampled many times.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf returns a bounded Zipf sampler over n ranks with exponent s.
// It panics if n <= 0 or s < 0.
func NewZipf(src *Source, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank draws one rank in [0, N()).
func (z *Zipf) Rank() int {
	u := z.src.Float64()
	return searchCDF(z.cdf, u)
}

// CDF returns the cumulative probability of ranks 0..rank. It returns 0
// for negative ranks and 1 beyond the last rank.
func (z *Zipf) CDF(rank int) float64 {
	if rank < 0 {
		return 0
	}
	if rank >= len(z.cdf) {
		return 1
	}
	return z.cdf[rank]
}

// Prob returns the probability mass of the given rank.
func (z *Zipf) Prob(rank int) float64 {
	if rank < 0 || rank >= len(z.cdf) {
		return 0
	}
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}

func searchCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Categorical samples indices in [0, len(weights)) with probability
// proportional to the (non-negative) weights, via a precomputed CDF.
type Categorical struct {
	cdf []float64
	src *Source
}

// NewCategorical builds a categorical sampler from weights. It panics if
// weights is empty, contains a negative entry, or sums to zero.
func NewCategorical(src *Source, weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("xrand: NewCategorical with empty weights")
	}
	cdf := make([]float64, len(weights))
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: NewCategorical with negative or NaN weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum == 0 {
		panic("xrand: NewCategorical with zero total weight")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Categorical{cdf: cdf, src: src}
}

// Draw samples one index.
func (c *Categorical) Draw() int {
	return searchCDF(c.cdf, c.src.Float64())
}

// N returns the number of categories.
func (c *Categorical) N() int { return len(c.cdf) }

// Multinomial distributes total units across the categories by repeated
// categorical draws when total is small, or by a single pass of expected
// counts plus stochastic rounding when total is large. The returned slice
// always sums exactly to total.
func (c *Categorical) Multinomial(total int64) []int64 {
	out := make([]int64, len(c.cdf))
	if total <= 0 {
		return out
	}
	const exactThreshold = 2048
	if total <= exactThreshold {
		for i := int64(0); i < total; i++ {
			out[c.Draw()]++
		}
		return out
	}
	// Large totals: expected value + stochastic rounding of remainders,
	// then fix up any residual on categorical draws.
	var assigned int64
	prev := 0.0
	for i, cv := range c.cdf {
		p := cv - prev
		prev = cv
		exp := p * float64(total)
		base := math.Floor(exp)
		n := int64(base)
		if c.src.Float64() < exp-base {
			n++
		}
		out[i] = n
		assigned += n
	}
	for assigned < total {
		out[c.Draw()]++
		assigned++
	}
	for assigned > total {
		i := c.Draw()
		if out[i] > 0 {
			out[i]--
			assigned--
		}
	}
	return out
}
