// Package xrand provides the deterministic randomness substrate used by
// every stochastic component in this repository.
//
// The package exists so that experiments are bit-reproducible: all
// generators derive from an explicit, seedable Source (a SplitMix64
// stream), and independent sub-streams can be forked from a parent stream
// by label, so adding randomness consumers to one module never perturbs
// the draws observed by another.
package xrand

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic 64-bit pseudo-random stream based on
// SplitMix64 (Steele, Lea & Flood, OOPSLA'14). It is tiny, fast,
// equidistributed enough for simulation workloads, and trivially
// forkable. A Source is NOT safe for concurrent use; fork per goroutine.
type Source struct {
	state uint64
	seed  uint64 // initial seed, preserved so Fork is use-independent
}

// NewSource returns a Source seeded with seed. Distinct seeds give
// independent-looking streams; seed 0 is valid.
func NewSource(seed uint64) *Source {
	return &Source{state: seed, seed: seed}
}

// Fork derives an independent child stream from the parent's seed and a
// string label. The parent's own state is not consumed, so the set of
// children is stable regardless of how much the parent has been used.
func (s *Source) Fork(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	// Mix the label hash with the parent's initial entropy (one
	// SplitMix64 round over the seed, not the advancing state).
	z := mix64(s.seed + 0x9e3779b97f4a7c15)
	return NewSource(z ^ h.Sum64())
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n called with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal deviate (Box–Muller; we favour
// simplicity over the ziggurat since simulation setup is not hot).
func (s *Source) NormFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential deviate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// LogNormal returns a log-normal deviate with the given location mu and
// scale sigma of the underlying normal.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Gamma returns a Gamma(shape, 1) deviate using the Marsaglia–Tsang
// method (2000). shape must be > 0.
func (s *Source) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("xrand: Gamma called with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		return s.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := s.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64()
		if u == 0 {
			continue
		}
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet fills out with a draw from a Dirichlet distribution with the
// given concentration parameters alpha (all > 0). out and alpha must have
// the same length. The result sums to 1.
func (s *Source) Dirichlet(alpha []float64, out []float64) {
	if len(alpha) != len(out) {
		panic("xrand: Dirichlet length mismatch")
	}
	var sum float64
	for i, a := range alpha {
		g := s.Gamma(a)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw (possible for tiny alphas); fall back to uniform.
		u := 1 / float64(len(out))
		for i := range out {
			out[i] = u
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Poisson returns a Poisson(lambda) deviate. For large lambda it uses a
// normal approximation, which is adequate for workload generation.
func (s *Source) Poisson(lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := math.Round(lambda + math.Sqrt(lambda)*s.NormFloat64())
		if n < 0 {
			return 0
		}
		return int64(n)
	}
	// Knuth's multiplication method.
	limit := math.Exp(-lambda)
	var k int64
	p := 1.0
	for {
		p *= s.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}
