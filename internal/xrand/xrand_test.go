package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with same seed diverged: %d != %d", i, got, want)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws in 100", same)
	}
}

func TestForkIndependentOfParentUse(t *testing.T) {
	a := NewSource(7)
	childBefore := a.Fork("worker").Uint64()
	for i := 0; i < 50; i++ {
		a.Uint64() // consume parent
	}
	childAfter := a.Fork("worker").Uint64()
	if childBefore != childAfter {
		t.Fatalf("fork depends on parent consumption: %d != %d", childBefore, childAfter)
	}
}

func TestForkLabelsDiffer(t *testing.T) {
	a := NewSource(7)
	if a.Fork("x").Uint64() == a.Fork("y").Uint64() {
		t.Fatal("forks with different labels produced the same first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewSource(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewSource(5)
	for n := 1; n <= 17; n++ {
		seen := make(map[int]bool)
		for i := 0; i < 200*n; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("Intn(%d) only produced %d distinct values", n, len(seen))
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewSource(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := NewSource(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestGammaMean(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		s := NewSource(19)
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			v := s.Gamma(shape)
			if v < 0 {
				t.Fatalf("Gamma(%v) negative: %v", shape, v)
			}
			sum += v
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Errorf("Gamma(%v) mean = %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	s := NewSource(23)
	alpha := []float64{0.2, 1, 3, 0.5, 2}
	out := make([]float64, len(alpha))
	for i := 0; i < 1000; i++ {
		s.Dirichlet(alpha, out)
		var sum float64
		for _, v := range out {
			if v < 0 {
				t.Fatalf("Dirichlet produced negative component: %v", out)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sum = %v, want 1", sum)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 30, 500} {
		s := NewSource(29)
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(NewSource(1), 1.1, 500)
	var sum float64
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf probabilities sum to %v", sum)
	}
}

func TestZipfMonotoneHead(t *testing.T) {
	z := NewZipf(NewSource(1), 1.0, 100)
	for i := 1; i < 100; i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("Zipf mass not non-increasing at rank %d", i)
		}
	}
}

func TestZipfEmpiricalSkew(t *testing.T) {
	src := NewSource(31)
	z := NewZipf(src, 1.0, 1000)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Rank()]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("rank 0 (%d) not more frequent than rank 10 (%d)", counts[0], counts[10])
	}
	// Rank 0 of Zipf(1.0, 1000) should hold ~13% of the mass.
	frac := float64(counts[0]) / n
	if frac < 0.10 || frac > 0.17 {
		t.Fatalf("rank-0 frequency %v outside expected Zipf head", frac)
	}
}

func TestZipfRankInRangeProperty(t *testing.T) {
	src := NewSource(37)
	z := NewZipf(src, 0.8, 77)
	f := func(_ uint32) bool {
		r := z.Rank()
		return r >= 0 && r < 77
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategoricalRespectsZeroWeights(t *testing.T) {
	src := NewSource(41)
	c := NewCategorical(src, []float64{0, 1, 0, 2, 0})
	for i := 0; i < 10000; i++ {
		d := c.Draw()
		if d != 1 && d != 3 {
			t.Fatalf("drew zero-weight category %d", d)
		}
	}
}

func TestCategoricalProportions(t *testing.T) {
	src := NewSource(43)
	c := NewCategorical(src, []float64{1, 3})
	n1 := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if c.Draw() == 1 {
			n1++
		}
	}
	if frac := float64(n1) / n; math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("category-1 frequency %v, want ~0.75", frac)
	}
}

func TestMultinomialSumsExactly(t *testing.T) {
	src := NewSource(47)
	c := NewCategorical(src, []float64{5, 1, 0.1, 3, 0})
	for _, total := range []int64{0, 1, 7, 100, 2048, 2049, 1000000} {
		out := c.Multinomial(total)
		var sum int64
		for i, v := range out {
			if v < 0 {
				t.Fatalf("total=%d: negative count at %d: %v", total, i, out)
			}
			sum += v
		}
		if sum != total {
			t.Fatalf("total=%d: counts sum to %d", total, sum)
		}
		if out[4] != 0 {
			t.Fatalf("total=%d: zero-weight category received %d units", total, out[4])
		}
	}
}

func TestMultinomialProportionsLarge(t *testing.T) {
	src := NewSource(53)
	c := NewCategorical(src, []float64{1, 1, 2})
	out := c.Multinomial(4_000_000)
	frac2 := float64(out[2]) / 4_000_000
	if math.Abs(frac2-0.5) > 0.01 {
		t.Fatalf("heavy category got fraction %v, want ~0.5", frac2)
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"negative": {1, -1},
		"zero-sum": {0, 0},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewCategorical(%v) did not panic", weights)
				}
			}()
			NewCategorical(NewSource(1), weights)
		})
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := NewSource(59)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(2, 1.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := NewSource(61)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestInt63nBounds(t *testing.T) {
	s := NewSource(71)
	for i := 0; i < 5000; i++ {
		v := s.Int63n(1000000007)
		if v < 0 || v >= 1000000007 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	s.Int63n(0)
}

func TestBernoulliFrequency(t *testing.T) {
	s := NewSource(73)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", f)
	}
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) fired")
	}
}

func TestDirichletPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dirichlet length mismatch did not panic")
		}
	}()
	NewSource(1).Dirichlet([]float64{1, 1}, make([]float64, 3))
}

func TestZipfCDFShape(t *testing.T) {
	z := NewZipf(NewSource(1), 1.0, 50)
	if z.CDF(-1) != 0 {
		t.Fatal("CDF(-1) != 0")
	}
	if z.CDF(100) != 1 {
		t.Fatal("CDF beyond range != 1")
	}
	prev := 0.0
	for i := 0; i < z.N(); i++ {
		c := z.CDF(i)
		if c < prev {
			t.Fatalf("CDF not monotone at %d", i)
		}
		if math.Abs((c-prev)-z.Prob(i)) > 1e-12 {
			t.Fatalf("CDF/Prob inconsistent at %d", i)
		}
		prev = c
	}
	if math.Abs(prev-1) > 1e-9 {
		t.Fatalf("CDF(last) = %v", prev)
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	z := NewZipf(NewSource(1), 1.0, 10)
	if z.Prob(-1) != 0 || z.Prob(10) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
	if z.N() != 10 {
		t.Fatalf("N = %d", z.N())
	}
}

func TestNewZipfPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero n":       func() { NewZipf(NewSource(1), 1, 0) },
		"negative exp": func() { NewZipf(NewSource(1), -1, 5) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}
