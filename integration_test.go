// Integration tests at repository scope: the headline shapes of every
// experiment, end to end, on the shared bench fixture. These are the
// tests DESIGN.md's experiment index points at.
package viewstags_test

import (
	"math"
	"testing"

	"viewstags/internal/alexa"
	"viewstags/internal/dist"
	"viewstags/internal/geocache"
	"viewstags/internal/mapchart"
	"viewstags/internal/pipeline"
	"viewstags/internal/tagviews"
)

func testFixture(t *testing.T) *pipeline.Result {
	t.Helper()
	benchOnce.Do(func() {
		benchRes, benchErr = pipeline.FromSynthetic(benchScale, 20110301, alexa.DefaultConfig())
	})
	if benchErr != nil {
		t.Fatalf("fixture: %v", benchErr)
	}
	return benchRes
}

// TestT1FilteringRatios verifies the §2 dataset proportions: ~0.63% of
// videos untagged, ~35% dropped overall, unique tags ≈ 0.66 per crawled
// video, mean views per kept video within an order of magnitude of the
// paper's 2.5×10⁵.
func TestT1FilteringRatios(t *testing.T) {
	res := testFixture(t)
	r := res.Clean.Report
	n := float64(r.Crawled)

	untagged := float64(r.Untagged) / n
	if math.Abs(untagged-0.00633) > 0.004 {
		t.Errorf("untagged rate %.5f, paper 0.00633", untagged)
	}
	drop := r.DropRate()
	if math.Abs(drop-0.35) > 0.05 {
		t.Errorf("drop rate %.3f, paper 0.350", drop)
	}
	uniqueTags, views := res.Clean.UniqueTags()
	tagsPerVideo := float64(uniqueTags) / n
	if tagsPerVideo < 0.2 || tagsPerVideo > 1.2 {
		t.Errorf("unique tags per crawled video %.2f, paper 0.66", tagsPerVideo)
	}
	meanViews := float64(views) / float64(r.Kept)
	if meanViews < 2.5e3 || meanViews > 2.5e6 {
		t.Errorf("mean views per kept video %.0f, paper ~2.5e5 (order-of-magnitude check)", meanViews)
	}
}

// TestF1TopVideoShape: the most-viewed video's popularity map is broad
// (many countries with data) and capped at 61 — the Fig. 1 artifact.
func TestF1TopVideoShape(t *testing.T) {
	res := testFixture(t)
	an := res.Analysis
	best, bestViews := -1, int64(-1)
	for i := 0; i < an.N(); i++ {
		if v := an.Record(i).TotalViews; v > bestViews {
			best, bestViews = i, v
		}
	}
	pop, err := an.Record(best).PopVector(res.World)
	if err != nil {
		t.Fatal(err)
	}
	nonZero, maxV := 0, 0
	for _, x := range pop {
		if x > 0 {
			nonZero++
		}
		if x > maxV {
			maxV = x
		}
	}
	if maxV != mapchart.MaxIntensity {
		t.Errorf("top video max intensity %d, want 61", maxV)
	}
	if nonZero < res.World.N()/3 {
		t.Errorf("top video has data in only %d/%d countries; Fig. 1 is near-global", nonZero, res.World.N())
	}
}

// TestF2F3TagContrast: the Fig. 2 / Fig. 3 dichotomy on the fixture.
func TestF2F3TagContrast(t *testing.T) {
	res := testFixture(t)
	popP, ok := res.Analysis.TagProfile("pop")
	if !ok {
		t.Fatal("'pop' missing")
	}
	favP, ok := res.Analysis.TagProfile("favela")
	if !ok {
		t.Fatal("'favela' missing")
	}
	if popP.Spread != dist.SpreadGlobal {
		t.Errorf("'pop' spread = %v, want global", popP.Spread)
	}
	if favP.Spread == dist.SpreadGlobal {
		t.Errorf("'favela' spread = %v, want concentrated", favP.Spread)
	}
	br := res.World.MustByCode("BR")
	if favP.TopCountry != br {
		t.Errorf("'favela' top country = %v, want BR", res.World.Country(favP.TopCountry).Code)
	}
	if favP.TopShare < 0.5 {
		t.Errorf("'favela' BR share %.3f, want > 0.5", favP.TopShare)
	}
	if popP.JSToTraffic >= favP.JSToTraffic/2.5 {
		t.Errorf("JS(pop)=%.3f not well below JS(favela)=%.3f", popP.JSToTraffic, favP.JSToTraffic)
	}
}

// TestE5PredictorWins: the conjecture holds — tags beat both baselines.
func TestE5PredictorWins(t *testing.T) {
	res := testFixture(t)
	r, err := tagviews.Evaluate(res.World, res.Clean.Records, res.Clean.Pop, res.Pyt, tagviews.DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.TagJS >= r.PriorJS || r.TagJS >= r.UploadJS {
		t.Errorf("tag predictor JS %.4f vs prior %.4f, upload %.4f — must beat both", r.TagJS, r.PriorJS, r.UploadJS)
	}
	if r.TagTop1 <= r.PriorTop1 {
		t.Errorf("tag top-1 %.3f not above prior %.3f", r.TagTop1, r.PriorTop1)
	}
}

// TestE6PolicyOrdering: the caching conjecture's headline ordering at 64
// slots per country.
func TestE6PolicyOrdering(t *testing.T) {
	res := testFixture(t)
	pred, err := tagviews.NewPredictor(res.Analysis, tagviews.WeightIDF)
	if err != nil {
		t.Fatal(err)
	}
	cat := res.Catalog
	predictions := make([][]float64, len(cat.Videos))
	for i := range cat.Videos {
		names := cat.Videos[i].TagNames(cat.Vocab)
		if len(names) == 0 {
			continue
		}
		if p, ok := pred.Predict(names); ok {
			predictions[i] = p
		}
	}
	cfg := geocache.DefaultConfig()
	cfg.Requests = 80_000
	sim, err := geocache.NewSimulator(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetPredictions(predictions); err != nil {
		t.Fatal(err)
	}
	get := func(p geocache.PolicyKind) float64 {
		r, err := sim.Run(p, 64)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		return r.HitRatio
	}
	lru := get(geocache.PolicyLRU)
	pop := get(geocache.PolicyPopPush)
	tag := get(geocache.PolicyTagPush)
	oracle := get(geocache.PolicyOracle)
	if !(oracle >= tag && tag > pop && tag > lru) {
		t.Errorf("policy ordering violated: oracle=%.4f tag=%.4f pop=%.4f lru=%.4f", oracle, tag, pop, lru)
	}
}
