// Streaming integration test at repository scope: a real HTTP daemon
// (listener, middleware, compactor goroutine — everything cmd/serve
// wires except flag parsing) under concurrent ingest + predict load,
// asserting that predictions after a fold reflect the ingested deltas.
package viewstags_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"viewstags/internal/ingest"
	"viewstags/internal/profilestore"
	"viewstags/internal/server"
	"viewstags/internal/tagviews"
)

func postJSON(t *testing.T, client *http.Client, url string, req, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestStreamingIngestEndToEnd stands up the full serving stack with a
// fast-folding compactor, ingests a live stream for a distinctive new
// tag while readers keep predicting an old one, and asserts:
//  1. mid-stream reads are always coherent (200, known, sane shares);
//  2. several fold epochs complete under load;
//  3. after the folds, the ingested tag predicts to exactly the
//     distribution its events described — the acceptance criterion
//     "predictions after a fold reflect ingested deltas".
func TestStreamingIngestEndToEnd(t *testing.T) {
	res := testFixture(t)
	snap, err := profilestore.Build(res.Analysis)
	if err != nil {
		t.Fatal(err)
	}
	store, err := profilestore.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.DefaultConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ingest.NewAccumulator(store, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableIngest(acc, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	comp, err := ingest.NewCompactor(acc, 10*time.Millisecond, func(d []profilestore.TagDelta, n int) error {
		return srv.ApplyDeltas(d, n, tagviews.WeightIDF)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	compDone := make(chan struct{})
	go func() { defer close(compDone); comp.Run(ctx) }()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Writers stream view events for one new tag with a fixed 80/20
	// JP/US geography; readers hammer predictions for a training-set
	// tag throughout.
	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			code := postJSON(t, client, ts.URL+"/v1/ingest", server.IngestRequest{Events: []server.IngestEvent{
				{Video: fmt.Sprintf("live-%d", i), Tags: []string{"zz-integration"}, Country: "JP", Views: 80, Upload: true},
				{Video: fmt.Sprintf("live-%d", i), Tags: []string{"zz-integration"}, Country: "US", Views: 20},
			}}, nil)
			if code != http.StatusOK {
				t.Errorf("ingest round %d: status %d", i, code)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*3; i++ {
			var pr server.PredictResponse
			code := postJSON(t, client, ts.URL+"/v1/predict",
				server.PredictRequest{Tags: []string{"pop"}, Top: 3}, &pr)
			if code != http.StatusOK || pr.Result == nil || !pr.Result.Known {
				t.Errorf("read %d incoherent: code=%d %+v", i, code, pr.Result)
				return
			}
			for _, cs := range pr.Result.Top {
				if cs.Share < 0 || cs.Share > 1 {
					t.Errorf("read %d share out of range: %+v", i, cs)
					return
				}
			}
		}
	}()
	wg.Wait()
	cancel()
	<-compDone // Run's shutdown fold flushed the tail

	if acc.Epoch() < 2 {
		t.Fatalf("only %d fold epochs under the stream", acc.Epoch())
	}

	// The folded profile must reflect exactly what was ingested.
	var pr server.PredictResponse
	if code := postJSON(t, client, ts.URL+"/v1/predict",
		server.PredictRequest{Tags: []string{"zz-integration"}, Top: 2}, &pr); code != http.StatusOK {
		t.Fatalf("post-fold predict: %d", code)
	}
	if pr.Result == nil || !pr.Result.Known {
		t.Fatalf("ingested tag unknown after folds: %+v", pr)
	}
	if top := pr.Result.Top[0]; top.Country != "JP" || top.Share < 0.79 || top.Share > 0.81 {
		t.Fatalf("ingested geography not reflected: top=%+v, want JP at 0.8", top)
	}
	if second := pr.Result.Top[1]; second.Country != "US" || second.Share < 0.19 || second.Share > 0.21 {
		t.Fatalf("ingested geography not reflected: second=%+v, want US at 0.2", second)
	}

	// Bookkeeping: every round flagged one distinct upload, so the
	// corpus grew by exactly `rounds` records.
	var health struct {
		Records int    `json:"records"`
		Epoch   uint64 `json:"epoch"`
	}
	if code := func() int {
		resp, err := client.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}(); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health.Records != snap.Records()+rounds {
		t.Fatalf("records %d, want %d (+%d ingested uploads)", health.Records, snap.Records(), rounds)
	}
}
