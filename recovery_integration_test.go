// Crash-recovery integration tests at repository scope: the real
// cmd/serve binary with -data-dir, driven over real HTTP, hard-killed
// and restarted — asserting the durable tier's headline promise: an
// acked event is never lost, and a recovered node predicts exactly what
// a never-killed one does.
package viewstags_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"viewstags/internal/alexa"
	"viewstags/internal/ingest"
	"viewstags/internal/persist"
	"viewstags/internal/pipeline"
	"viewstags/internal/profilestore"
	"viewstags/internal/server"
	"viewstags/internal/tagviews"
)

// The daemon and the in-process reference node must build the identical
// base snapshot, so they share generation parameters.
const (
	recVideos = 1500
	recSeed   = 424242
)

var (
	serveBinOnce sync.Once
	serveBinPath string
	serveBinDir  string
	serveBinErr  error
)

// serveBinary builds cmd/serve once per test run, into a directory that
// outlives any single test (a t.TempDir would vanish when the first
// test using it finishes, breaking the second). TestMain removes it.
func serveBinary(t *testing.T) string {
	t.Helper()
	serveBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "viewstags-serve-bin-")
		if err != nil {
			serveBinErr = err
			return
		}
		serveBinDir = dir
		serveBinPath = filepath.Join(dir, "serve-under-test")
		out, err := exec.Command("go", "build", "-o", serveBinPath, "./cmd/serve").CombinedOutput()
		if err != nil {
			serveBinErr = fmt.Errorf("building cmd/serve: %v\n%s", err, out)
		}
	})
	if serveBinErr != nil {
		t.Fatal(serveBinErr)
	}
	return serveBinPath
}

// TestMain cleans up the shared serve binary after the whole package.
func TestMain(m *testing.M) {
	code := m.Run()
	if serveBinDir != "" {
		_ = os.RemoveAll(serveBinDir)
	}
	os.Exit(code)
}

// daemon is one running serve process.
type daemon struct {
	t      *testing.T
	cmd    *exec.Cmd
	url    string
	stderr *bytes.Buffer
	done   chan error
}

func startDaemon(t *testing.T, dataDir string, extra ...string) *daemon {
	t.Helper()
	bin := serveBinary(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	args := append([]string{
		"-addr", addr,
		"-videos", fmt.Sprint(recVideos),
		"-seed", fmt.Sprint(recSeed),
		"-ingest-interval", "30s", // folds only happen when the test asks
		"-grace", "5s",
		"-data-dir", dataDir,
	}, extra...)
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{t: t, cmd: cmd, url: "http://" + addr, stderr: &stderr, done: make(chan error, 1)}
	go func() { d.done <- cmd.Wait() }()
	t.Cleanup(func() {
		select {
		case <-d.done:
		default:
			_ = cmd.Process.Kill()
			<-d.done
		}
	})

	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(d.url + "/readyz")
		if err == nil {
			code := resp.StatusCode
			_ = resp.Body.Close()
			if code == http.StatusOK {
				return d
			}
		}
		select {
		case werr := <-d.done:
			d.done <- werr
			t.Fatalf("daemon exited before becoming ready: %v\nstderr:\n%s", werr, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon not ready in time\nstderr:\n%s", stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// kill SIGKILLs the daemon — the hard-crash case.
func (d *daemon) kill() {
	d.t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		d.t.Fatal(err)
	}
	<-d.done
	d.done <- nil
}

// term SIGTERMs the daemon and waits for the graceful exit.
func (d *daemon) term() {
	d.t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.t.Fatal(err)
	}
	select {
	case err := <-d.done:
		d.done <- nil
		if err != nil {
			d.t.Fatalf("daemon exited with %v on SIGTERM\nstderr:\n%s", err, d.stderr.String())
		}
	case <-time.After(30 * time.Second):
		d.t.Fatalf("daemon did not exit on SIGTERM\nstderr:\n%s", d.stderr.String())
	}
}

// recoveryBatches is the ingested geography both tests replay: phase A
// is folded and checkpointed before the kill, phase B only journaled.
func recoveryBatchA() server.IngestRequest {
	return server.IngestRequest{Events: []server.IngestEvent{
		{Video: "rec-a1", Tags: []string{"zz-rec-a"}, Country: "US", Views: 70, Upload: true},
		{Video: "rec-a1", Tags: []string{"zz-rec-a"}, Country: "JP", Views: 30},
		{Video: "rec-a2", Tags: []string{"zz-rec-a", "zz-rec-b"}, Country: "BR", Views: 10, Upload: true},
	}}
}

func recoveryBatchB() server.IngestRequest {
	return server.IngestRequest{Events: []server.IngestEvent{
		{Video: "rec-b1", Tags: []string{"zz-rec-b"}, Country: "FR", Views: 50, Upload: true},
		{Video: "rec-b1", Tags: []string{"zz-rec-b"}, Country: "BR", Views: 40},
		{Video: "rec-b2", Tags: []string{"zz-rec-a"}, Country: "DE", Views: 5, Upload: true},
	}}
}

// referenceNode builds the never-killed twin in process and applies the
// given batches over real HTTP, folding after each.
func referenceNode(t *testing.T, batches []server.IngestRequest) (*httptest.Server, func()) {
	t.Helper()
	res, err := pipeline.FromSynthetic(recVideos, recSeed, alexa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := profilestore.Build(res.Analysis)
	if err != nil {
		t.Fatal(err)
	}
	store, err := profilestore.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.DefaultConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ingest.NewAccumulator(store, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableIngest(acc, time.Second); err != nil {
		t.Fatal(err)
	}
	comp, err := ingest.NewCompactor(acc, time.Hour, func(d []profilestore.TagDelta, n int) error {
		return srv.ApplyDeltas(d, n, tagviews.WeightIDF)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetReady()
	ts := httptest.NewServer(srv.Handler())
	for i, b := range batches {
		if code := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", b, nil); code != http.StatusOK {
			t.Fatalf("reference ingest %d: status %d", i, code)
		}
		if _, err := comp.FoldNow(); err != nil {
			t.Fatal(err)
		}
	}
	return ts, ts.Close
}

// predictShares fetches one prediction's full share map.
func predictShares(t *testing.T, client *http.Client, base string, tags []string, weighting string) (bool, map[string]float64) {
	t.Helper()
	var resp server.PredictResponse
	code := postJSON(t, client, base+"/v1/predict", server.PredictRequest{Tags: tags, Weighting: weighting, Top: 200}, &resp)
	if code != http.StatusOK || resp.Result == nil {
		t.Fatalf("predict %v: status %d", tags, code)
	}
	shares := map[string]float64{}
	for _, cs := range resp.Result.Top {
		shares[cs.Country] = cs.Share
	}
	return resp.Result.Known, shares
}

// assertSameGeography compares a node's predictions against the
// reference within tol for several tag mixes and weightings.
func assertSameGeography(t *testing.T, nodeURL, refURL string, tol float64) {
	t.Helper()
	client := &http.Client{Timeout: 30 * time.Second}
	mixes := [][]string{
		{"zz-rec-a"},
		{"zz-rec-b"},
		{"zz-rec-a", "zz-rec-b"},          // cross-tag: IDF weights must agree → records recovered exactly
		{"zz-rec-b", "zz-never-ingested"}, // unknown tags must not perturb recovery state
	}
	for _, weighting := range []string{"idf", "by-views", "uniform"} {
		for _, tags := range mixes {
			gotKnown, got := predictShares(t, client, nodeURL, tags, weighting)
			wantKnown, want := predictShares(t, client, refURL, tags, weighting)
			if gotKnown != wantKnown {
				t.Fatalf("%v (%s): known=%v, reference %v", tags, weighting, gotKnown, wantKnown)
			}
			if len(got) != len(want) {
				t.Fatalf("%v (%s): %d countries vs reference %d", tags, weighting, len(got), len(want))
			}
			for c, share := range want {
				if diff := math.Abs(got[c] - share); diff > tol {
					t.Fatalf("%v (%s): share[%s] = %v, reference %v (diff %g > %g)",
						tags, weighting, c, got[c], share, diff, tol)
				}
			}
		}
	}
}

// TestRecoveryEndToEnd is the acceptance test: serve with -data-dir,
// ingest over real HTTP, checkpoint mid-stream, ingest more, SIGKILL,
// restart — the recovered node must load the checkpoint, replay the
// journal tail, and predict the ingested geography identically (1e-9)
// to a reference node that was never killed.
func TestRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon")
	}
	dataDir := t.TempDir()
	d := startDaemon(t, dataDir, "-checkpoint-every", "1")
	client := &http.Client{Timeout: 30 * time.Second}

	// Phase A: acked, folded, checkpointed.
	if code := postJSON(t, client, d.url+"/v1/ingest", recoveryBatchA(), nil); code != http.StatusOK {
		t.Fatalf("ingest A: status %d", code)
	}
	var ckpt server.CheckpointStatus
	if code := postJSON(t, client, d.url+"/v1/checkpoint", struct{}{}, &ckpt); code != http.StatusOK {
		t.Fatalf("checkpoint: status %d", code)
	}
	if ckpt.Epoch < 1 {
		t.Fatalf("checkpoint epoch %d, want >= 1 (phase A folded)", ckpt.Epoch)
	}

	// Phase B: acked and journaled, never folded — the WAL's reason to
	// exist. SIGKILL right after the ack.
	if code := postJSON(t, client, d.url+"/v1/ingest", recoveryBatchB(), nil); code != http.StatusOK {
		t.Fatalf("ingest B: status %d", code)
	}
	d.kill()

	// Restart over the same directory.
	d2 := startDaemon(t, dataDir, "-checkpoint-every", "1")

	// Both recovery paths must have been exercised: the checkpoint
	// loaded (phase A) and the journal replayed (phase B).
	var stats struct {
		Persist *persist.Stats `json:"persist"`
	}
	if code := getJSON(t, client, d2.url+"/v1/stats", &stats); code != http.StatusOK || stats.Persist == nil {
		t.Fatalf("/v1/stats persist block missing after restart (code %d)", code)
	}
	if !stats.Persist.Recovered {
		t.Fatal("restarted daemon did not load the checkpoint")
	}
	if stats.Persist.ReplayedRecords < 1 {
		t.Fatalf("restarted daemon replayed %d journal records, want >= 1 (phase B)", stats.Persist.ReplayedRecords)
	}
	var health struct {
		Epoch uint64 `json:"epoch"`
	}
	if code := getJSON(t, client, d2.url+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz after restart: %d", code)
	}
	if health.Epoch < ckpt.Epoch+1 {
		t.Fatalf("recovered epoch %d, want >= %d (checkpoint epoch + recovery fold)", health.Epoch, ckpt.Epoch+1)
	}

	// The recovered node must predict exactly what a never-killed node
	// does — including IDF weights, so the record count survived too.
	ref, closeRef := referenceNode(t, []server.IngestRequest{recoveryBatchA(), recoveryBatchB()})
	defer closeRef()
	assertSameGeography(t, d2.url, ref.URL, 1e-9)
}

// TestGracefulShutdownFlush pins the clean-stop contract: ack, SIGTERM,
// restart — the drained daemon folds and checkpoints its buffer tail,
// so the restarted one predicts the acked events without needing a
// journal replay.
func TestGracefulShutdownFlush(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and stops a real daemon")
	}
	dataDir := t.TempDir()
	// checkpoint-every 0: nothing checkpoints on fold cadence, so the
	// events can only survive via the shutdown flush (or the journal).
	d := startDaemon(t, dataDir, "-checkpoint-every", "0")
	client := &http.Client{Timeout: 30 * time.Second}

	if code := postJSON(t, client, d.url+"/v1/ingest", recoveryBatchA(), nil); code != http.StatusOK {
		t.Fatalf("ingest: status %d", code)
	}
	if code := postJSON(t, client, d.url+"/v1/ingest", recoveryBatchB(), nil); code != http.StatusOK {
		t.Fatalf("ingest: status %d", code)
	}
	d.term()

	d2 := startDaemon(t, dataDir, "-checkpoint-every", "0")
	var stats struct {
		Persist *persist.Stats `json:"persist"`
	}
	if code := getJSON(t, client, d2.url+"/v1/stats", &stats); code != http.StatusOK || stats.Persist == nil {
		t.Fatalf("/v1/stats persist block missing after restart (code %d)", code)
	}
	if !stats.Persist.Recovered {
		t.Fatal("restarted daemon did not load the shutdown checkpoint")
	}
	if stats.Persist.ReplayedRecords != 0 {
		t.Fatalf("clean stop left %d journal records to replay, want 0 (shutdown flush must checkpoint the tail)",
			stats.Persist.ReplayedRecords)
	}

	ref, closeRef := referenceNode(t, []server.IngestRequest{recoveryBatchA(), recoveryBatchB()})
	defer closeRef()
	assertSameGeography(t, d2.url, ref.URL, 1e-9)
}

// getJSON GETs and decodes a JSON body.
func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestReadOnlyRestartRefusesUnreplayedJournal pins review fix: a
// durable daemon restarted with -ingest-interval 0 must refuse to
// start while acked journal records sit past the checkpoint — serving
// without them would silently violate the ack contract.
func TestReadOnlyRestartRefusesUnreplayedJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon")
	}
	dataDir := t.TempDir()
	d := startDaemon(t, dataDir)
	client := &http.Client{Timeout: 30 * time.Second}
	if code := postJSON(t, client, d.url+"/v1/ingest", recoveryBatchA(), nil); code != http.StatusOK {
		t.Fatalf("ingest: status %d", code)
	}
	d.kill() // journal tail left behind (30s interval: nothing folded)

	bin := serveBinary(t)
	out, err := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-videos", fmt.Sprint(recVideos),
		"-seed", fmt.Sprint(recSeed),
		"-ingest-interval", "0",
		"-data-dir", dataDir,
	).CombinedOutput()
	if err == nil {
		t.Fatalf("read-only restart over an unreplayed journal started anyway:\n%s", out)
	}
	if !bytes.Contains(out, []byte("would be invisible")) {
		t.Fatalf("refusal does not name the journal tail:\n%s", out)
	}
}
