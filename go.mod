module viewstags

go 1.21
