// Replica failover integration test at repository scope: a 3-shard
// R=2 tier — every tag's slice held by two real HTTP daemons — behind
// a real gateway, with one replica cut mid-run. The replication
// contract under test: reads fail over to the surviving copy with no
// client-visible error and stay float-tolerance-equal to a single
// full node; writes keep landing on the live owners while a replica
// is down; and the revived replica is rebuilt from its peers exactly
// (proven by cutting the OTHER copy afterwards and re-asserting
// equality, so the caught-up replica is the one answering).
package viewstags_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"viewstags/internal/cluster"
	"viewstags/internal/ingest"
	"viewstags/internal/profilestore"
	"viewstags/internal/server"
	"viewstags/internal/tagviews"
)

// startReplicaNode is startClusterNode for a replicated tier: the node
// holds every slice the R-way ring assigns it and has the
// /internal/transfer surface wired (topology hooks + synchronous fold),
// so gateway catch-up and resharding work against it.
func startReplicaNode(t *testing.T, index, count, replicas int, foldEvery time.Duration) *clusterNode {
	t.Helper()
	res := testFixture(t)
	ring, err := cluster.NewRingReplicas(count, 0, replicas)
	if err != nil {
		t.Fatal(err)
	}
	var owns func(string) bool
	if count > 1 {
		owns = func(name string) bool { return ring.Owns(name, index) }
	}
	snap, err := profilestore.BuildOwned(res.Analysis, owns)
	if err != nil {
		t.Fatal(err)
	}
	store, err := profilestore.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.DefaultConfig()
	cfg.ShardIndex = index
	cfg.ShardCount = count
	cfg.Replicas = replicas
	cfg.RingSignature = ring.Signature()
	cfg.Topology = ring
	cfg.MakeTopology = func(shards, replicas int) (server.ShardTopology, error) {
		r, err := cluster.NewRingReplicas(shards, 0, replicas)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
	srv, err := server.New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ingest.NewAccumulator(store, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableIngest(acc, foldEvery); err != nil {
		t.Fatal(err)
	}
	srv.SetReady()
	comp, err := ingest.NewCompactor(acc, foldEvery, func(d []profilestore.TagDelta, n int) error {
		return srv.ApplyDeltas(d, n, tagviews.WeightIDF)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFoldHook(comp.FoldNow)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); comp.Run(ctx) }()
	ts := httptest.NewServer(srv.Handler())
	return &clusterNode{srv: srv, acc: acc, ts: ts, stop: func() {
		cancel()
		<-done
		ts.Close()
	}}
}

// flakyShard fronts one node with a proxy whose failure mode is a cut
// connection — the transport error a crashed daemon produces — while
// the URL the gateway routes to stays stable across "crashes", so the
// same shard can die and come back.
type flakyShard struct {
	blocked atomic.Bool
	ts      *httptest.Server
}

func newFlakyShard(t *testing.T, backend string) *flakyShard {
	t.Helper()
	target, err := url.Parse(backend)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	f := &flakyShard{}
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.blocked.Load() {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("proxy response writer not hijackable")
				return
			}
			conn, _, _ := hj.Hijack()
			_ = conn.Close()
			return
		}
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(f.ts.Close)
	return f
}

// promCounter scrapes one counter from the gateway's /metrics text.
func promCounter(t *testing.T, client *http.Client, base, name string) float64 {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("unparsable %s value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("counter %s not in exposition", name)
	return 0
}

// TestReplicaFailoverEndToEnd drives the kill → failover → sloppy
// writes → catch-up → exactness sequence described in the package
// comment.
func TestReplicaFailoverEndToEnd(t *testing.T) {
	res := testFixture(t)
	const shards, replicas = 3, 2
	foldEvery := 15 * time.Millisecond

	ringOne, err := cluster.NewRing(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	single := startClusterNode(t, ringOne, 0, 1, foldEvery)
	defer single.stop()

	nodes := make([]*clusterNode, shards)
	proxies := make([]*flakyShard, shards)
	targets := make([]string, shards)
	for i := range nodes {
		nodes[i] = startReplicaNode(t, i, shards, replicas, foldEvery)
		defer nodes[i].stop()
		proxies[i] = newFlakyShard(t, nodes[i].ts.URL)
		targets[i] = proxies[i].ts.URL
	}
	gcfg := cluster.DefaultGatewayConfig()
	gcfg.Replicas = replicas
	gcfg.FailThreshold = 2
	gcfg.Wire = cluster.WireBinary
	g, err := cluster.NewGateway(gcfg, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	client := gw.Client()
	ctx := context.Background()

	readyCode := func() int {
		resp, err := client.Get(gw.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		return resp.StatusCode
	}

	// Healthy tier: replicated answers match the single node.
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"favela", "samba"})
	assertSamePrediction(t, client, single.ts.URL, gw.URL, res.Analysis.TagNames()[:25])

	// Cut shard 1 with the gateway still believing it healthy: every
	// read that routes there must fail over to the other replica with
	// no client-visible error.
	proxies[1].blocked.Store(true)
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"pop", "music"})
	assertSamePrediction(t, client, single.ts.URL, gw.URL, res.Analysis.TagNames()[:40])
	if v := promCounter(t, client, gw.URL, "viewstags_replica_failover_total"); v <= 0 {
		t.Fatalf("failover counter = %v after reads against a cut replica, want > 0", v)
	}

	// Health detection marks it down; with R=2 every slice is still
	// covered, so the cluster stays READY — the tentpole's availability
	// claim.
	g.RefreshHealth(ctx)
	g.RefreshHealth(ctx)
	if code := readyCode(); code != http.StatusOK {
		t.Fatalf("/readyz with one of two replicas down: %d, want 200", code)
	}

	// Writes while down are sloppy: live owners take them, nothing
	// sheds, the single node gets the identical stream.
	const rounds = 20
	for i := 0; i < rounds; i++ {
		events := []server.IngestEvent{
			{Video: fmt.Sprintf("rf-%d", i), Tags: []string{"zz-rf-a", "zz-rf-b", "zz-rf-c"},
				Country: "BR", Views: 70, Upload: true},
			{Video: fmt.Sprintf("rf-%d", i), Tags: []string{"zz-rf-a", "zz-rf-b", "zz-rf-c"},
				Country: "DE", Views: 30},
		}
		for _, url := range []string{gw.URL, single.ts.URL} {
			if code := postJSON(t, client, url+"/v1/ingest", server.IngestRequest{Events: events}, nil); code != http.StatusOK {
				t.Fatalf("ingest round %d at %s with a replica down: status %d", i, url, code)
			}
		}
	}
	waitFolded := func(ns ...*clusterNode) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			pending := single.acc.Stats().Pending
			for _, n := range ns {
				pending += n.acc.Stats().Pending
			}
			if pending == 0 {
				return
			}
			time.Sleep(foldEvery)
		}
	}
	waitFolded(nodes[0], nodes[2])
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"zz-rf-a"})
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"zz-rf-b", "pop"})

	// Revive: the shard answers again but is stale, so it re-enters as
	// syncing (writes yes, reads no) until catch-up rebuilds it from
	// the live replicas under the gateway's write barrier.
	proxies[1].blocked.Store(false)
	g.RefreshHealth(ctx)
	if err := g.CatchUp(ctx); err != nil {
		t.Fatalf("catch-up after revival: %v", err)
	}
	if code := readyCode(); code != http.StatusOK {
		t.Fatalf("/readyz after catch-up: %d, want 200", code)
	}

	// Exactness of the rebuild: cut the OTHER replica, forcing shard 1
	// to serve the slices the two share — including everything ingested
	// while it was dead. Any catch-up gap shows up as a float mismatch.
	proxies[2].blocked.Store(true)
	g.RefreshHealth(ctx)
	g.RefreshHealth(ctx)
	if code := readyCode(); code != http.StatusOK {
		t.Fatalf("/readyz with the other replica down: %d, want 200", code)
	}
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"zz-rf-a"})
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"zz-rf-c", "favela", "zz-rf-a"})
	assertSamePrediction(t, client, single.ts.URL, gw.URL, res.Analysis.TagNames()[:40])

	// The stats surface tells the whole story: R=2, one shard down,
	// none syncing.
	var stats struct {
		Cluster struct {
			Replicas int `json:"replicas"`
			Healthy  int `json:"healthy"`
			Shards   []struct {
				Healthy bool `json:"healthy"`
				Syncing bool `json:"syncing"`
			} `json:"shards"`
		} `json:"cluster"`
	}
	resp, err := client.Get(gw.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cluster.Replicas != replicas || stats.Cluster.Healthy != shards-1 {
		t.Fatalf("cluster stats %+v, want replicas=%d healthy=%d", stats.Cluster, replicas, shards-1)
	}
	for i, s := range stats.Cluster.Shards {
		if s.Syncing {
			t.Fatalf("shard %d still syncing after catch-up", i)
		}
	}
}
