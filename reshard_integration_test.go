// Live resharding integration test at repository scope: a 3-shard R=2
// tier grows to 4 shards while concurrent reads hammer the gateway.
// The handoff contract under test: zero failed requests during the
// move (the request barrier stalls them, it never drops them),
// post-handoff predictions float-tolerance-equal to a single full
// node (slices moved exactly once, nothing double-counted), the new
// ring visible in /v1/stats with the handoff record, and writes
// landing correctly on the grown tier afterwards.
package viewstags_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"viewstags/internal/cluster"
	"viewstags/internal/server"
)

func TestLiveReshardGrowEndToEnd(t *testing.T) {
	res := testFixture(t)
	const before, after, replicas = 3, 4, 2
	foldEvery := 15 * time.Millisecond

	ringOne, err := cluster.NewRing(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	single := startClusterNode(t, ringOne, 0, 1, foldEvery)
	defer single.stop()

	nodes := make([]*clusterNode, before)
	targets := make([]string, before)
	for i := range nodes {
		nodes[i] = startReplicaNode(t, i, before, replicas, foldEvery)
		defer nodes[i].stop()
		targets[i] = nodes[i].ts.URL
	}
	gcfg := cluster.DefaultGatewayConfig()
	gcfg.Replicas = replicas
	gcfg.Wire = cluster.WireBinary
	g, err := cluster.NewGateway(gcfg, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	client := gw.Client()

	// Seed a live stream into both tiers so the reshard has folded
	// post-boot state to move, not just the synthetic base.
	const rounds = 20
	for i := 0; i < rounds; i++ {
		events := []server.IngestEvent{
			{Video: fmt.Sprintf("rs-%d", i), Tags: []string{"zz-rs-a", "zz-rs-b", "zz-rs-c"},
				Country: "JP", Views: 60, Upload: true},
			{Video: fmt.Sprintf("rs-%d", i), Tags: []string{"zz-rs-a", "zz-rs-b", "zz-rs-c"},
				Country: "FR", Views: 40},
		}
		for _, url := range []string{gw.URL, single.ts.URL} {
			if code := postJSON(t, client, url+"/v1/ingest", server.IngestRequest{Events: events}, nil); code != http.StatusOK {
				t.Fatalf("seed ingest round %d at %s: status %d", i, url, code)
			}
		}
	}
	waitFolded := func(ns []*clusterNode) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			pending := single.acc.Stats().Pending
			for _, n := range ns {
				pending += n.acc.Stats().Pending
			}
			if pending == 0 {
				return
			}
			time.Sleep(foldEvery)
		}
	}
	waitFolded(nodes)
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"zz-rs-a", "pop"})

	// Boot the incoming shard with its grown identity: shard 3 of 4
	// over the same dataset. It builds its base slice itself; the
	// reshard transfer brings it everything folded since boot.
	n3 := startReplicaNode(t, 3, after, replicas, foldEvery)
	defer n3.stop()

	// Concurrent read load straddling the move. The request barrier
	// makes the reshard invisible: requests stall briefly and then
	// succeed — a failure here is a dropped request.
	stop := make(chan struct{})
	var reads, readErrs atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf struct {
				Result *struct {
					Known bool `json:"known"`
				} `json:"result"`
			}
			req, _ := json.Marshal(server.PredictRequest{Tags: []string{"pop"}, Top: 3})
			resp, err := client.Post(gw.URL+"/v1/predict", "application/json", bytes.NewReader(req))
			reads.Add(1)
			if err != nil {
				readErrs.Add(1)
				continue
			}
			if err := json.NewDecoder(resp.Body).Decode(&buf); err != nil ||
				resp.StatusCode != http.StatusOK || buf.Result == nil || !buf.Result.Known {
				readErrs.Add(1)
			}
			_ = resp.Body.Close()
		}
	}()

	grown := append(append([]string(nil), targets...), n3.ts.URL)
	var rr cluster.ReshardResponse
	code := postJSON(t, client, gw.URL+"/v1/reshard", cluster.ReshardRequest{Targets: grown}, &rr)
	close(stop)
	wg.Wait()
	if code != http.StatusOK {
		t.Fatalf("POST /v1/reshard: status %d (%+v)", code, rr)
	}
	if readErrs.Load() != 0 {
		t.Fatalf("%d of %d concurrent reads failed during the reshard, want 0", readErrs.Load(), reads.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("read load goroutine never issued a request — the test proved nothing")
	}
	if rr.Shards != after || rr.Replicas != replicas || rr.HandoffEpoch != 1 {
		t.Fatalf("reshard ack %+v, want shards=%d replicas=%d handoff_epoch=1", rr, after, replicas)
	}

	// Post-handoff equality against the single-node reference: the
	// tentpole's 1e-9 criterion, over base and streamed vocabulary.
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"favela", "samba"})
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"zz-rs-a"})
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"zz-rs-b", "pop", "zz-rs-c"})
	assertSamePrediction(t, client, single.ts.URL, gw.URL, res.Analysis.TagNames()[:40])

	// The handoff is observable after the fact: new shard count, the
	// completed epoch, phase idle.
	var stats struct {
		Cluster struct {
			Replicas int `json:"replicas"`
			Healthy  int `json:"healthy"`
			Shards   []struct {
				Index int `json:"index"`
			} `json:"shards"`
			Handoff *struct {
				Epoch uint64 `json:"epoch"`
				Phase string `json:"phase"`
				From  int    `json:"from_shards"`
				To    int    `json:"to_shards"`
			} `json:"handoff"`
		} `json:"cluster"`
	}
	resp, err := client.Get(gw.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Cluster.Shards) != after || stats.Cluster.Healthy != after {
		t.Fatalf("post-reshard cluster %+v, want %d healthy shards", stats.Cluster, after)
	}
	if h := stats.Cluster.Handoff; h == nil || h.Epoch != 1 || h.Phase != "idle" || h.From != before || h.To != after {
		t.Fatalf("post-reshard handoff %+v, want epoch=1 phase=idle from=%d to=%d", stats.Cluster.Handoff, before, after)
	}

	// Writes keep working on the grown tier and stay exact.
	for i := 0; i < rounds; i++ {
		events := []server.IngestEvent{
			{Video: fmt.Sprintf("rs2-%d", i), Tags: []string{"zz-rs-d", "zz-rs-e"},
				Country: "US", Views: 90, Upload: true},
			{Video: fmt.Sprintf("rs2-%d", i), Tags: []string{"zz-rs-d", "zz-rs-e"},
				Country: "KR", Views: 10},
		}
		for _, url := range []string{gw.URL, single.ts.URL} {
			if code := postJSON(t, client, url+"/v1/ingest", server.IngestRequest{Events: events}, nil); code != http.StatusOK {
				t.Fatalf("post-reshard ingest round %d at %s: status %d", i, url, code)
			}
		}
	}
	waitFolded(append(append([]*clusterNode(nil), nodes...), n3))
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"zz-rs-d"})
	assertSamePrediction(t, client, single.ts.URL, gw.URL, []string{"zz-rs-e", "zz-rs-a", "favela"})
}
