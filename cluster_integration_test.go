// Cluster integration test at repository scope: a 3-shard
// tag-partitioned serving tier — three real HTTP shard daemons
// (partial-vocabulary snapshots, live compactors) behind a real HTTP
// gateway — driven concurrently with reads and writes, asserting the
// tentpole acceptance criterion: gateway answers are
// float-tolerance-equal to a single full node over the same dataset,
// before and after streaming ingest, and the gateway reports the
// cluster's minimum fold epoch throughout.
package viewstags_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"viewstags/internal/cluster"
	"viewstags/internal/ingest"
	"viewstags/internal/profilestore"
	"viewstags/internal/server"
	"viewstags/internal/tagviews"
)

// clusterNode is one daemon of the tier: shard or standalone,
// compactor folding in the background.
type clusterNode struct {
	srv  *server.Server
	acc  *ingest.Accumulator
	ts   *httptest.Server
	stop func()
}

func startClusterNode(t *testing.T, ring *cluster.Ring, index, count int, foldEvery time.Duration) *clusterNode {
	t.Helper()
	res := testFixture(t)
	var owns func(string) bool
	if count > 1 {
		owns = func(name string) bool { return ring.Owner(name) == index }
	}
	snap, err := profilestore.BuildOwned(res.Analysis, owns)
	if err != nil {
		t.Fatal(err)
	}
	store, err := profilestore.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.DefaultConfig()
	cfg.ShardIndex = index
	cfg.ShardCount = count
	cfg.RingSignature = ring.Signature()
	srv, err := server.New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ingest.NewAccumulator(store, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableIngest(acc, foldEvery); err != nil {
		t.Fatal(err)
	}
	srv.SetReady()
	comp, err := ingest.NewCompactor(acc, foldEvery, func(d []profilestore.TagDelta, n int) error {
		return srv.ApplyDeltas(d, n, tagviews.WeightIDF)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); comp.Run(ctx) }()
	ts := httptest.NewServer(srv.Handler())
	n := &clusterNode{srv: srv, acc: acc, ts: ts, stop: func() {
		cancel()
		<-done // shutdown fold flushes the tail
		ts.Close()
	}}
	return n
}

// TestClusterGatewayEndToEnd stands up the full 3-shard tier plus a
// single-node reference, streams the same writes into both through
// their public APIs under concurrent read load, and asserts equality.
func TestClusterGatewayEndToEnd(t *testing.T) {
	res := testFixture(t)
	const shards = 3
	foldEvery := 15 * time.Millisecond

	ringOne, err := cluster.NewRing(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	single := startClusterNode(t, ringOne, 0, 1, foldEvery)
	defer single.stop()

	ring, err := cluster.NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*clusterNode, shards)
	targets := make([]string, shards)
	for i := range nodes {
		nodes[i] = startClusterNode(t, ring, i, shards, foldEvery)
		targets[i] = nodes[i].ts.URL
		defer nodes[i].stop()
	}
	gcfg := cluster.DefaultGatewayConfig()
	gcfg.HealthInterval = 20 * time.Millisecond
	// The tier under test is the shipping configuration: binary
	// internal wire (the default) with micro-batch coalescing on, so
	// the equivalence assertions below cover the fast path, not just
	// the JSON debug fallback.
	gcfg.Wire = cluster.WireBinary
	gcfg.CoalesceWindow = 250 * time.Microsecond
	g, err := cluster.NewGateway(gcfg, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	pollCtx, stopPoll := context.WithCancel(context.Background())
	defer stopPoll()
	go func() {
		tick := time.NewTicker(gcfg.HealthInterval)
		defer tick.Stop()
		for {
			select {
			case <-pollCtx.Done():
				return
			case <-tick.C:
				g.RefreshHealth(pollCtx)
			}
		}
	}()
	client := gw.Client()

	// Phase 1: static equivalence on the training vocabulary.
	sampleTags := [][]string{
		{"favela", "samba"},
		{"pop", "music"},
		res.Analysis.TagNames()[:25],
	}
	for _, tags := range sampleTags {
		assertSamePrediction(t, client, single.ts.URL, gw.URL, tags)
	}

	// Phase 2: concurrent stream. Writers push identical multi-tag
	// upload streams into both tiers through their public ingest
	// routes; readers hammer the gateway throughout.
	const rounds = 30
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			events := []server.IngestEvent{
				{Video: fmt.Sprintf("cl-%d", i), Tags: []string{"zz-clu-a", "zz-clu-b", "zz-clu-c"},
					Country: "JP", Views: 80, Upload: true},
				{Video: fmt.Sprintf("cl-%d", i), Tags: []string{"zz-clu-a", "zz-clu-b", "zz-clu-c"},
					Country: "US", Views: 20},
			}
			for _, url := range []string{gw.URL, single.ts.URL} {
				if code := postJSON(t, client, url+"/v1/ingest", server.IngestRequest{Events: events}, nil); code != http.StatusOK {
					t.Errorf("ingest round %d at %s: status %d", i, url, code)
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*3; i++ {
			var pr server.PredictResponse
			code := postJSON(t, client, gw.URL+"/v1/predict",
				server.PredictRequest{Tags: []string{"pop"}, Top: 3}, &pr)
			if code != http.StatusOK || pr.Result == nil || !pr.Result.Known {
				t.Errorf("mid-stream gateway read %d incoherent: code=%d %+v", i, code, pr.Result)
				return
			}
		}
	}()
	wg.Wait()

	// Let every shard fold the tail, then verify convergence.
	deadline := time.Now().Add(5 * time.Second)
	for {
		allFolded := single.acc.Stats().Pending == 0
		for _, n := range nodes {
			if n.acc.Stats().Pending > 0 {
				allFolded = false
			}
		}
		if allFolded || time.Now().After(deadline) {
			break
		}
		time.Sleep(foldEvery)
	}

	// Phase 3: post-stream equivalence, including the ingested tags.
	for _, tags := range [][]string{
		{"zz-clu-a"},
		{"zz-clu-b", "pop"},
		{"zz-clu-c", "favela", "zz-clu-a"},
	} {
		assertSamePrediction(t, client, single.ts.URL, gw.URL, tags)
	}

	// The ingested geography round-trips exactly (80/20 JP/US).
	var pr server.PredictResponse
	if code := postJSON(t, client, gw.URL+"/v1/predict",
		server.PredictRequest{Tags: []string{"zz-clu-b"}, Top: 2}, &pr); code != http.StatusOK {
		t.Fatalf("post-stream predict: %d", code)
	}
	if pr.Result == nil || !pr.Result.Known {
		t.Fatalf("ingested tag unknown after folds: %+v", pr)
	}
	if top := pr.Result.Top[0]; top.Country != "JP" || math.Abs(top.Share-0.8) > 0.01 {
		t.Fatalf("ingested geography not reflected: top=%+v, want JP at 0.8", top)
	}

	// Every shard's corpus grew by exactly `rounds` uploads — including
	// shards owning none of the stream's tags (announcement routing).
	for i, n := range nodes {
		base := testFixture(t).Analysis.N()
		if got := n.srv.Store().Load().Records(); got != base+rounds {
			t.Fatalf("shard %d records %d, want %d", i, got, base+rounds)
		}
	}

	// The gateway health view converged: min epoch > 0 and every shard
	// healthy.
	g.RefreshHealth(context.Background())
	var health struct {
		Status  string `json:"status"`
		Epoch   uint64 `json:"epoch"`
		Healthy int    `json:"healthy"`
	}
	resp, err := client.Get(gw.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Healthy != shards {
		t.Fatalf("cluster health %+v", health)
	}
	if health.Epoch == 0 {
		t.Fatal("gateway reports epoch 0 after a streamed run — epoch tracking broken")
	}
}

// assertSamePrediction compares the two tiers' full distributions for
// one tag list across all weightings, within float tolerance.
func assertSamePrediction(t *testing.T, client *http.Client, singleURL, gatewayURL string, tags []string) {
	t.Helper()
	for _, weighting := range []string{"uniform", "by-views", "idf"} {
		var want, got server.PredictResponse
		req := server.PredictRequest{Tags: tags, Weighting: weighting, Top: 1 << 10}
		if code := postJSON(t, client, singleURL+"/v1/predict", req, &want); code != http.StatusOK {
			t.Fatalf("single-node predict: %d", code)
		}
		if code := postJSON(t, client, gatewayURL+"/v1/predict", req, &got); code != http.StatusOK {
			t.Fatalf("gateway predict: %d", code)
		}
		if want.Result == nil || got.Result == nil || got.Result.Known != want.Result.Known {
			t.Fatalf("w=%s %v: result mismatch: %+v vs %+v", weighting, tags, got.Result, want.Result)
		}
		wantS := map[string]float64{}
		for _, cs := range want.Result.Top {
			wantS[cs.Country] = cs.Share
		}
		gotS := map[string]float64{}
		for _, cs := range got.Result.Top {
			gotS[cs.Country] = cs.Share
		}
		if len(wantS) != len(gotS) {
			t.Fatalf("w=%s %v: %d countries vs %d", weighting, tags, len(gotS), len(wantS))
		}
		for country, share := range wantS {
			if math.Abs(gotS[country]-share) > 1e-9 {
				t.Fatalf("w=%s %v %s: gateway %v, single-node %v", weighting, tags, country, gotS[country], share)
			}
		}
	}
}
