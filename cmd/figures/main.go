// Command figures regenerates the paper's three figures over the
// synthetic pipeline:
//
//	F1 — popularity map of the most-viewed video (paper: Justin Bieber –
//	     Baby ft. Ludacris), rendered from its quantized pop(v)
//	F2 — views(t) map of the top global tag 'pop', which follows the
//	     world distribution of YouTube users
//	F3 — views(t) map of the tag 'favela', concentrated in Brazil
//
// Each figure prints an ASCII world map and, with -csv DIR, writes the
// underlying per-country series as CSV.
//
// Usage:
//
//	figures -synth 30000 [-fig 1|2|3|all] [-csv out/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"viewstags/internal/alexa"
	"viewstags/internal/dist"
	"viewstags/internal/geo"
	"viewstags/internal/pipeline"
	"viewstags/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		synthN = flag.Int("synth", 20000, "synthetic catalog size")
		seed   = flag.Uint64("seed", 20110301, "generation seed")
		fig    = flag.String("fig", "all", "which figure: 1, 2, 3 or all")
		csvDir = flag.String("csv", "", "directory for CSV series (optional)")
		sigma  = flag.Float64("alexa-noise", 0.10, "Alexa estimator noise σ")
	)
	flag.Parse()

	acfg := alexa.DefaultConfig()
	acfg.NoiseSigma = *sigma
	res, err := pipeline.FromSynthetic(*synthN, *seed, acfg)
	if err != nil {
		return err
	}

	want := map[string]bool{}
	if *fig == "all" {
		want["1"], want["2"], want["3"] = true, true, true
	} else {
		want[*fig] = true
	}
	if want["1"] {
		if err := figure1(res, *csvDir); err != nil {
			return err
		}
	}
	if want["2"] {
		if err := figureTag(res, "pop", 2,
			"Fig. 2 — the tag 'pop' tends to follow the world distribution of YouTube users", *csvDir); err != nil {
			return err
		}
	}
	if want["3"] {
		if err := figureTag(res, "favela", 3,
			"Fig. 3 — videos associated with the tag 'favela' are mostly viewed in Brazil", *csvDir); err != nil {
			return err
		}
	}
	if !want["1"] && !want["2"] && !want["3"] {
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	return nil
}

// figure1 renders the most-viewed video's popularity map from its
// quantized pop vector — exactly the artifact the paper's Fig. 1 shows.
func figure1(res *pipeline.Result, csvDir string) error {
	an := res.Analysis
	best, bestViews := -1, int64(-1)
	for i := 0; i < an.N(); i++ {
		if v := an.Record(i).TotalViews; v > bestViews {
			best, bestViews = i, v
		}
	}
	if best < 0 {
		return fmt.Errorf("empty dataset")
	}
	rec := an.Record(best)
	pop, err := rec.PopVector(res.World)
	if err != nil {
		return err
	}
	intens := make([]float64, len(pop))
	capped := 0
	for c, x := range pop {
		intens[c] = float64(x)
		if x == 61 {
			capped++
		}
	}
	title := fmt.Sprintf("Fig. 1 — popularity map of the most-viewed video: %q (%d views; %d countries at the 61 cap)",
		rec.Title, rec.TotalViews, capped)
	m, err := report.WorldMap(res.World, intens, title)
	if err != nil {
		return err
	}
	fmt.Println(m)
	if csvDir != "" {
		return writeSeries(res.World, intens, filepath.Join(csvDir, "fig1_top_video_popmap.csv"), "intensity")
	}
	return nil
}

func figureTag(res *pipeline.Result, tag string, figNo int, caption, csvDir string) error {
	p, ok := res.Analysis.TagProfile(tag)
	if !ok {
		return fmt.Errorf("tag %q not present; increase -synth", tag)
	}
	title := fmt.Sprintf("%s\n(tag %q: %d videos, JS-to-traffic %.3f, top %s %.1f%%, spread %s)",
		caption, tag, p.Videos, p.JSToTraffic,
		res.World.Country(p.TopCountry).Code, 100*p.TopShare, p.Spread)
	m, err := report.WorldMap(res.World, p.Views, title)
	if err != nil {
		return err
	}
	fmt.Println(m)
	if csvDir != "" {
		return writeSeries(res.World, p.Views,
			filepath.Join(csvDir, fmt.Sprintf("fig%d_tag_%s.csv", figNo, tag)), "views")
	}
	return nil
}

func writeSeries(world *geo.World, values []float64, path, valueHeader string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	p := dist.Normalize(values)
	rows := make([][]string, world.N())
	for c := 0; c < world.N(); c++ {
		rows[c] = []string{
			world.Country(geo.CountryID(c)).Code,
			strconv.FormatFloat(values[c], 'g', -1, 64),
			strconv.FormatFloat(p[c], 'g', -1, 64),
		}
	}
	if err := report.WriteCSV(f, []string{"country", valueHeader, "share"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
