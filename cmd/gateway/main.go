// Command gateway is the cluster edge for a tag-partitioned serving
// tier: given the base URLs of N shard daemons (each started as
// cmd/serve -shard i/N over the same dataset), it scatter-gathers
// partial predictions into exact merged answers on /v1/predict, routes
// /v1/ingest events to the shards that own their tags, merges /v1/tags,
// and reports per-shard health and the cluster's minimum fold epoch on
// /healthz and /v1/stats (see API.md "Gateway routes" and OPERATIONS.md
// "Cluster topology").
//
// Usage:
//
//	gateway -addr 127.0.0.1:8090 \
//	        -shards http://127.0.0.1:8091,http://127.0.0.1:8092,http://127.0.0.1:8093
//
// At startup the gateway syncs against every shard's /internal/meta —
// shard identity, ring signature, country table and prior must all
// agree — retrying for -sync-wait so it can be started before (or
// while) the shards come up. SIGINT/SIGTERM drains gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"viewstags/internal/cluster"
	"viewstags/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gateway:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:8090", "listen address")
		shards      = flag.String("shards", "", "comma-separated shard base URLs, in shard order (target i must run -shard i/n)")
		maxInflight = flag.Int("max-inflight", 256, "concurrent request bound")
		maxBatch    = flag.Int("max-batch", 1024, "max items per batched predict or ingest")
		logRequests = flag.Bool("log-requests", false, "log every request")
		grace       = flag.Duration("grace", 10*time.Second, "shutdown drain timeout")
		healthEvery = flag.Duration("health-interval", time.Second, "shard health poll cadence")
		syncWait    = flag.Duration("sync-wait", 30*time.Second, "how long to retry the startup shard sync (jittered exponential backoff)")
		replicas    = flag.Int("replicas", 1, "copies of each tag's slice the shard tier places (must match every shard's -replicas; 1 = unreplicated)")
		wireName    = flag.String("internal-wire", "binary", "gateway-to-shard predict codec: binary (compact float64 frames) or json (debug fallback)")
		coalesce    = flag.Duration("coalesce-window", 0, "micro-batch concurrent single predicts arriving within this window into one fan-out per shard (0 = off; useful range ~250us-1ms)")
		maxIdle     = flag.Int("max-idle-per-host", 0, "keep-alive connections kept per shard (0 = 2 x max-inflight; never let this fall below expected concurrency or gathers churn connections)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this separate operator-only address (empty = off)")
		slowReq     = flag.Duration("slow-request", 0, "log any request at or above this wall time, with its X-Request-Id and per-stage predict timings (0 = off)")
		traceDump   = flag.String("trace-dump-dir", ".", "flight recorder: dump the retained trace ring to traces_<event>.json here on SIGQUIT or a recovered handler panic (empty = off)")
	)
	flag.Parse()
	if *shards == "" {
		return fmt.Errorf("no -shards given")
	}
	var targets []string
	for _, t := range strings.Split(*shards, ",") {
		if t = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(t), "/")); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no usable targets in -shards %q", *shards)
	}

	wire, err := cluster.ParseWire(*wireName)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	cfg := cluster.DefaultGatewayConfig()
	cfg.MaxInFlight = *maxInflight
	cfg.MaxBatch = *maxBatch
	cfg.Logger = logger
	cfg.LogRequests = *logRequests
	cfg.HealthInterval = *healthEvery
	cfg.Wire = wire
	cfg.CoalesceWindow = *coalesce
	cfg.MaxIdleConnsPerHost = *maxIdle
	cfg.SlowRequest = *slowReq
	cfg.Replicas = *replicas
	g, err := cluster.NewGateway(cfg, targets)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		if err := server.StartPprof(ctx, *pprofAddr, logger); err != nil {
			return err
		}
	}

	// Flight recorder: SIGQUIT dumps the tail-sampled trace ring as a
	// black box; a recovered handler panic dumps it automatically.
	if *traceDump != "" {
		server.StartFlightRecorder(ctx, g.Traces(), *traceDump, logger)
		dir := *traceDump
		g.SetPanicHook(func() { server.DumpOnce(g.Traces(), dir, "panic", logger) })
	}

	// Sync with retry: shards build their profile stores at startup, so
	// give a freshly launched cluster time to assemble before giving up.
	// The schedule is jittered exponential backoff, so a fleet of
	// gateways restarting together does not probe the shards in waves.
	if err := g.SyncRetry(ctx, *syncWait); err != nil {
		return err
	}
	logger.Printf("gateway: synced %d shards (wire %s, coalesce %s), serving on http://%s (^C to drain)",
		len(targets), wire, *coalesce, *addr)
	return g.Run(ctx, *addr, *grace)
}
