// Command serve is the online geo-prediction daemon: it builds tag
// geographic profiles (from a synthetic catalog, or from a crawled
// dataset file when one is supplied) into an internal/profilestore
// snapshot and serves predictions, replica-placement recommendations
// and cache-preload advisories over HTTP (see API.md for the wire
// reference and OPERATIONS.md for running it in production shape).
//
// With ingestion enabled (the default), the daemon is self-updating: it
// accepts live view events on POST /v1/ingest and folds them into the
// serving snapshot every -ingest-interval via internal/ingest, so tag
// profiles track the live stream without a restart or batch reload.
//
// Usage:
//
//	serve -addr 127.0.0.1:8091 -videos 20000
//	serve -addr 127.0.0.1:8091 -dataset crawl.jsonl
//	serve -addr 127.0.0.1:8091 -ingest-interval 2s -ingest-buffer 1000000
//	serve -addr 127.0.0.1:8091 -ingest-interval 0   # read-only daemon
//	serve -addr 127.0.0.1:8091 -shard 0/3           # one cluster shard
//	serve -addr 127.0.0.1:8091 -data-dir /var/lib/viewstags  # durable
//
// With -shard i/n the daemon serves the tag partition a shared
// consistent-hash ring (internal/cluster) assigns shard i, for use
// behind cmd/gateway — see OPERATIONS.md "Cluster topology".
//
// With -data-dir the daemon is durable (internal/persist): every acked
// ingest batch is journaled to a write-ahead log before the ack, the
// serving snapshot is checkpointed every -checkpoint-every folds (and
// at shutdown), and a restart recovers the newest checkpoint plus the
// journal tail — so a crash loses nothing that was acknowledged. Under
// -shard i/n the state lives in a shard-<i>-of-<n> subdirectory, so
// shards can share one volume. See OPERATIONS.md "Durability &
// recovery" for fsync and checkpoint tuning.
//
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// requests and folds (and, with -data-dir, checkpoints) any
// accepted-but-unfolded events.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"viewstags/internal/alexa"
	"viewstags/internal/cluster"
	"viewstags/internal/ingest"
	"viewstags/internal/persist"
	"viewstags/internal/pipeline"
	"viewstags/internal/profilestore"
	"viewstags/internal/server"
	"viewstags/internal/tagviews"
)

// parseShard parses the -shard "i/n" spec (0-based index), strictly —
// trailing garbage must fail fast, not silently join the cluster as
// the wrong partition. The empty spec is the standalone default:
// shard 0 of 1.
func parseShard(spec string) (index, count int, err error) {
	if spec == "" {
		return 0, 1, nil
	}
	i, n, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("invalid -shard %q: want i/n, e.g. 0/3", spec)
	}
	if index, err = strconv.Atoi(i); err == nil {
		count, err = strconv.Atoi(n)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("invalid -shard %q: want i/n, e.g. 0/3", spec)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("invalid -shard %q: index must be in [0, n)", spec)
	}
	return index, count, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8091", "listen address")
		videos       = flag.Int("videos", 20000, "synthetic catalog size (ignored with -dataset)")
		seed         = flag.Uint64("seed", 20110301, "synthetic generation seed")
		datasetPath  = flag.String("dataset", "", "crawled JSONL dataset (empty = synthesize)")
		weighting    = flag.String("weighting", "idf", "weighting for catalog preload predictions")
		maxInflight  = flag.Int("max-inflight", 256, "concurrent request bound")
		maxBatch     = flag.Int("max-batch", 1024, "max items per batched predict or ingest")
		logRequests  = flag.Bool("log-requests", false, "log every request")
		grace        = flag.Duration("grace", 10*time.Second, "shutdown drain timeout")
		ingestEvery  = flag.Duration("ingest-interval", 3*time.Second, "fold interval for live view events (0 disables /v1/ingest)")
		ingestBuffer = flag.Int("ingest-buffer", 1<<20, "max tag attributions (events x tags) buffered between folds")
		shardSpec    = flag.String("shard", "", "serve one tag partition as shard i/n (0-based, e.g. 0/3); empty = the whole vocabulary")
		replicas     = flag.Int("replicas", 1, "copies of each tag's slice the cluster ring places (must match the gateway's -replicas; 1 = unreplicated)")
		dataDir      = flag.String("data-dir", "", "durable state directory: WAL + snapshot checkpoints + crash recovery (empty = in-memory only)")
		fsyncPolicy  = flag.String("fsync", "never", "WAL/checkpoint fsync policy: always (survives power loss) or never (survives process death)")
		ckptEvery    = flag.Int("checkpoint-every", 16, "checkpoint the serving snapshot every N folds (0 = only at shutdown or via POST /v1/checkpoint)")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this separate operator-only address (empty = off)")
		slowReq      = flag.Duration("slow-request", 0, "log any request at or above this wall time, with its X-Request-Id (0 = off)")
		traceDump    = flag.String("trace-dump-dir", ".", "flight recorder: dump the retained trace ring to traces_<event>.json here on SIGQUIT or a recovered handler panic (empty = off)")
	)
	flag.Parse()

	shardIndex, shardCount, err := parseShard(*shardSpec)
	if err != nil {
		return err
	}
	// The ring is built even standalone (n=1): /internal/meta always
	// reports a signature, so a gateway can verify any node it fronts.
	// With -replicas R the ring places each tag on R distinct shards and
	// the signature covers R, so a replica-factor mismatch between shards
	// and gateway is caught at sync, not discovered as double-counting.
	ring, err := cluster.NewRingReplicas(shardCount, 0, *replicas)
	if err != nil {
		return err
	}

	w, err := tagviews.ParseWeighting(*weighting)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	start := time.Now()
	var res *pipeline.Result
	if *datasetPath != "" {
		logger.Printf("loading dataset %s...", *datasetPath)
		res, err = pipeline.FromFile(*datasetPath, alexa.DefaultConfig())
	} else {
		logger.Printf("generating %d-video synthetic catalog (seed %d)...", *videos, *seed)
		res, err = pipeline.FromSynthetic(*videos, *seed, alexa.DefaultConfig())
	}
	if err != nil {
		return err
	}

	var owns func(string) bool
	if shardCount > 1 {
		// With replicas a shard holds every tag it is ANY of the R owners
		// for, not just the primary — Owns generalizes Owner == index.
		owns = func(name string) bool { return ring.Owns(name, shardIndex) }
	}
	snap, err := profilestore.BuildOwned(res.Analysis, owns)
	if err != nil {
		return err
	}

	// Durable state: open the data directory and, when a checkpoint
	// exists, serve the recovered snapshot instead of the fresh build —
	// the checkpoint is the build plus every fold the previous process
	// acked. Shards get per-shard subdirectories so a cluster can share
	// one volume.
	var mgr *persist.Manager
	var recMeta persist.CheckpointMeta
	recovered := false
	if *dataDir != "" {
		fsync, err := persist.ParseFsync(*fsyncPolicy)
		if err != nil {
			return err
		}
		pdir := *dataDir
		if shardCount > 1 {
			pdir = filepath.Join(pdir, fmt.Sprintf("shard-%d-of-%d", shardIndex, shardCount))
		}
		if mgr, err = persist.Open(persist.Options{Dir: pdir, Fsync: fsync, Logger: logger}); err != nil {
			return err
		}
		recSnap, meta, found, err := mgr.LoadCheckpoint(res.Analysis.World)
		if err != nil {
			return err
		}
		if found {
			snap = recSnap
			recMeta = meta
			recovered = true
			logger.Printf("persist: recovered checkpoint gen %d epoch %d (%d tags, %d records) from %s",
				meta.Gen, meta.Epoch, snap.NumTags(), snap.Records(), pdir)
		} else {
			logger.Printf("persist: no checkpoint in %s, starting from the fresh build", pdir)
		}
	}

	store, err := profilestore.NewStore(snap)
	if err != nil {
		return err
	}
	if shardCount > 1 {
		logger.Printf("profile store: shard %d/%d owns %d tags over %d countries (built in %s)",
			shardIndex, shardCount, snap.NumTags(), snap.World().N(), time.Since(start).Round(time.Millisecond))
	} else {
		logger.Printf("profile store: %d tags over %d countries (built in %s)",
			snap.NumTags(), snap.World().N(), time.Since(start).Round(time.Millisecond))
	}

	cfg := server.DefaultConfig()
	cfg.MaxInFlight = *maxInflight
	cfg.MaxBatch = *maxBatch
	cfg.Logger = logger
	cfg.LogRequests = *logRequests
	cfg.ShardIndex = shardIndex
	cfg.ShardCount = shardCount
	cfg.Replicas = *replicas
	cfg.RingSignature = ring.Signature()
	cfg.Topology = ring
	cfg.MakeTopology = func(shards, replicas int) (server.ShardTopology, error) {
		r, err := cluster.NewRingReplicas(shards, 0, replicas)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
	cfg.SlowRequest = *slowReq
	srv, err := server.New(cfg, store)
	if err != nil {
		return err
	}
	if mgr != nil {
		// Durable-tier background traces (bg/wal, bg/checkpoint) share
		// the node's tail-sampled ring with request traces.
		mgr.SetTraceStore(srv.Traces())
	}

	// With a synthetic catalog the daemon can also serve preload
	// advisories: precompute every video's predicted demand field.
	// A shard's partial vocabulary would bias the demand fields, so
	// preload advisories stay a whole-vocabulary (standalone) feature.
	if shardCount > 1 {
		logger.Printf("shard mode: /v1/preload disabled (advisories need the whole vocabulary)")
	} else if res.Catalog != nil {
		if err := srv.SetCatalog(res.Catalog, snap.PredictCatalog(res.Catalog, w)); err != nil {
			return err
		}
		logger.Printf("preload advisories enabled over %d catalog videos", len(res.Catalog.Videos))
	} else {
		logger.Printf("no synthetic catalog: /v1/preload disabled")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		if err := server.StartPprof(ctx, *pprofAddr, logger); err != nil {
			return err
		}
	}

	// Flight recorder: SIGQUIT dumps the tail-sampled trace ring as a
	// black box; a recovered handler panic dumps it automatically.
	if *traceDump != "" {
		server.StartFlightRecorder(ctx, srv.Traces(), *traceDump, logger)
		dir := *traceDump
		srv.SetPanicHook(func() { server.DumpOnce(srv.Traces(), dir, "panic", logger) })
	}

	// The streaming write path: accumulate /v1/ingest events and fold
	// them into fresh snapshots in the background. The compactor runs on
	// its own context, canceled only after the HTTP server has fully
	// drained — events accepted during the grace window still get their
	// final fold, keeping the "acked means folded by shutdown" promise.
	var compactorDone chan struct{}
	var compactorStop context.CancelFunc
	if *ingestEvery > 0 {
		acc, err := ingest.NewAccumulator(store, *ingestBuffer)
		if err != nil {
			return err
		}
		if err := srv.EnableIngest(acc, *ingestEvery); err != nil {
			return err
		}
		comp, err := ingest.NewCompactor(acc, *ingestEvery, func(d []profilestore.TagDelta, n int) error {
			return srv.ApplyDeltas(d, n, w)
		}, logger)
		if err != nil {
			return err
		}
		comp.SetTraceStore(srv.Traces())
		// Shard transfers (replica catch-up, live reshard) fold pending
		// deltas before exporting or merging, so transferred state is
		// never missing buffered-but-unfolded events.
		srv.SetFoldHook(comp.FoldNow)
		if mgr != nil {
			// Recovery: position the accumulator at the checkpoint's
			// generation and epoch, replay the journal tail past it,
			// then fold-and-checkpoint so the node starts serving from
			// durable, collapsed state. Only after that does the WAL
			// attach as the journal — replayed batches are already on
			// disk and must not be re-appended.
			acc.Restore(recMeta.Gen, recMeta.Epoch)
			maxGen, applied, err := mgr.Replay(recMeta.Gen, acc.Replay)
			if err != nil {
				return err
			}
			if maxGen >= recMeta.Gen {
				acc.Restore(maxGen+1, recMeta.Epoch)
			}
			comp.SetCheckpoint(func(gen uint64) error {
				return mgr.SaveCheckpoint(persist.CheckpointMeta{Gen: gen, Epoch: acc.Epoch()}, store.Load().Export())
			}, *ckptEvery)
			if applied > 0 {
				logger.Printf("persist: replayed %d journal records past gen %d", applied, recMeta.Gen)
			}
			// Always checkpoint at boot: on a first start this pins the
			// base build durably; after a crash it folds the replayed
			// tail into a fresh checkpoint and prunes the old segments.
			if _, err := comp.CheckpointNow(); err != nil {
				return err
			}
			acc.SetJournal(mgr)
			if err := srv.EnablePersist(mgr.Stats, func() (server.CheckpointStatus, error) {
				if _, err := comp.CheckpointNow(); err != nil {
					return server.CheckpointStatus{}, err
				}
				st := mgr.Stats()
				return server.CheckpointStatus{Gen: st.CheckpointGen, Epoch: st.CheckpointEpoch}, nil
			}); err != nil {
				return err
			}
			srv.SetPersistHists(mgr.WALAppendHist(), mgr.CheckpointHist())
			logger.Printf("persist: journaling to %s (fsync %s, checkpoint every %d folds)", *dataDir, *fsyncPolicy, *ckptEvery)
		}
		var compCtx context.Context
		compCtx, compactorStop = context.WithCancel(context.Background())
		defer compactorStop() // idempotent; the drain path cancels first
		compactorDone = make(chan struct{})
		go func() {
			defer close(compactorDone)
			comp.Run(compCtx)
		}()
		logger.Printf("ingest enabled: folding every %s, buffer %d events", *ingestEvery, *ingestBuffer)
	} else {
		if mgr != nil {
			// Read-only durable daemon: the journal cannot be folded
			// (no accumulator), so any records past the checkpoint
			// would be acked-but-invisible — refuse rather than serve
			// silently stale state. The scan also truncates a torn
			// tail, which by definition was never acked.
			tail := int64(0)
			if _, n, err := mgr.Replay(recMeta.Gen, func([]ingest.Event, []string) error { return nil }); err != nil {
				return err
			} else if tail = n; tail > 0 {
				return fmt.Errorf("persist: %d journaled ingest records past checkpoint gen %d would be invisible with -ingest-interval 0; start with ingestion enabled to replay them (or move the wal-*.log files aside to accept their loss)", tail, recMeta.Gen)
			}
			if err := srv.EnablePersist(mgr.Stats, nil); err != nil {
				return err
			}
			srv.SetPersistHists(mgr.WALAppendHist(), mgr.CheckpointHist())
			if recovered {
				logger.Printf("persist: read-only daemon serving the recovered checkpoint (journal empty past it)")
			}
		}
		logger.Printf("ingest disabled (-ingest-interval 0): /v1/ingest answers 503")
	}

	// Recovery (if any) is complete and the serving snapshot installed:
	// flip /readyz so probes admit the node to rotation.
	srv.SetReady()

	logger.Printf("serving on http://%s (predict/ingest/place/preload; ^C to drain)", *addr)
	err = srv.Run(ctx, *addr, *grace)
	if compactorDone != nil {
		// The listener is closed and in-flight requests are drained;
		// stop the compactor now so its shutdown path folds — and, with
		// -data-dir, checkpoints — everything accepted up to and
		// including the grace window: a clean stop never strands an
		// acked event.
		compactorStop()
		<-compactorDone
	}
	if mgr != nil {
		if cerr := mgr.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
