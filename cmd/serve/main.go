// Command serve is the online geo-prediction daemon: it builds tag
// geographic profiles (from a synthetic catalog, or from a crawled
// dataset file when one is supplied) into an internal/profilestore
// snapshot and serves predictions, replica-placement recommendations
// and cache-preload advisories over HTTP (see internal/server for the
// API).
//
// Usage:
//
//	serve -addr 127.0.0.1:8091 -videos 20000
//	serve -addr 127.0.0.1:8091 -dataset crawl.jsonl
//
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"viewstags/internal/alexa"
	"viewstags/internal/pipeline"
	"viewstags/internal/profilestore"
	"viewstags/internal/server"
	"viewstags/internal/tagviews"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:8091", "listen address")
		videos      = flag.Int("videos", 20000, "synthetic catalog size (ignored with -dataset)")
		seed        = flag.Uint64("seed", 20110301, "synthetic generation seed")
		datasetPath = flag.String("dataset", "", "crawled JSONL dataset (empty = synthesize)")
		weighting   = flag.String("weighting", "idf", "weighting for catalog preload predictions")
		maxInflight = flag.Int("max-inflight", 256, "concurrent request bound")
		maxBatch    = flag.Int("max-batch", 1024, "max videos per batched predict")
		logRequests = flag.Bool("log-requests", false, "log every request")
		grace       = flag.Duration("grace", 10*time.Second, "shutdown drain timeout")
	)
	flag.Parse()

	w, err := tagviews.ParseWeighting(*weighting)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	start := time.Now()
	var res *pipeline.Result
	if *datasetPath != "" {
		logger.Printf("loading dataset %s...", *datasetPath)
		res, err = pipeline.FromFile(*datasetPath, alexa.DefaultConfig())
	} else {
		logger.Printf("generating %d-video synthetic catalog (seed %d)...", *videos, *seed)
		res, err = pipeline.FromSynthetic(*videos, *seed, alexa.DefaultConfig())
	}
	if err != nil {
		return err
	}

	snap, err := profilestore.Build(res.Analysis)
	if err != nil {
		return err
	}
	store, err := profilestore.NewStore(snap)
	if err != nil {
		return err
	}
	logger.Printf("profile store: %d tags over %d countries (built in %s)",
		snap.NumTags(), snap.World().N(), time.Since(start).Round(time.Millisecond))

	cfg := server.DefaultConfig()
	cfg.MaxInFlight = *maxInflight
	cfg.MaxBatch = *maxBatch
	cfg.Logger = logger
	cfg.LogRequests = *logRequests
	srv, err := server.New(cfg, store)
	if err != nil {
		return err
	}

	// With a synthetic catalog the daemon can also serve preload
	// advisories: precompute every video's predicted demand field.
	if res.Catalog != nil {
		if err := srv.SetCatalog(res.Catalog, snap.PredictCatalog(res.Catalog, w)); err != nil {
			return err
		}
		logger.Printf("preload advisories enabled over %d catalog videos", len(res.Catalog.Videos))
	} else {
		logger.Printf("no synthetic catalog: /v1/preload disabled")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Printf("serving on http://%s (predict/place/preload; ^C to drain)", *addr)
	return srv.Run(ctx, *addr, *grace)
}
