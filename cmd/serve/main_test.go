package main

import "testing"

// TestParseShard pins the -shard spec grammar, in particular that
// trailing garbage fails fast instead of silently joining the cluster
// as the wrong partition.
func TestParseShard(t *testing.T) {
	cases := []struct {
		spec     string
		index, n int
		wantErr  bool
	}{
		{"", 0, 1, false},
		{"0/3", 0, 3, false},
		{"2/3", 2, 3, false},
		{"3/3", 0, 0, true},  // index out of range
		{"-1/3", 0, 0, true}, // negative index
		{"0/0", 0, 0, true},  // no shards
		{"1/3/6", 0, 0, true},
		{"0/32x", 0, 0, true},
		{"a/3", 0, 0, true},
		{"1", 0, 0, true},
		{"1/", 0, 0, true},
		{" 1/3", 0, 0, true},
	}
	for _, c := range cases {
		index, n, err := parseShard(c.spec)
		if (err != nil) != c.wantErr {
			t.Errorf("parseShard(%q): err=%v, wantErr=%v", c.spec, err, c.wantErr)
			continue
		}
		if !c.wantErr && (index != c.index || n != c.n) {
			t.Errorf("parseShard(%q) = (%d, %d), want (%d, %d)", c.spec, index, n, c.index, c.n)
		}
	}
}
