// Command crawl runs the paper's §2 data collection against a GData API
// (normally cmd/ytsim): seed from the 25 countries' most_popular feeds,
// snowball over related videos, write the raw dataset as JSONL.
//
// Usage:
//
//	crawl -api http://127.0.0.1:8080 -out dataset.jsonl.gz [-max 100000]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"viewstags/internal/crawler"
	"viewstags/internal/dataset"
	"viewstags/internal/geo"
	"viewstags/internal/ytapi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		api        = flag.String("api", "http://127.0.0.1:8080", "API base URL")
		key        = flag.String("key", "", "developer key")
		out        = flag.String("out", "dataset.jsonl.gz", "output dataset path (.jsonl or .jsonl.gz)")
		max        = flag.Int("max", 0, "stop after this many videos (0 = exhaust)")
		workers    = flag.Int("workers", 16, "concurrent fetchers")
		rps        = flag.Float64("rps", 0, "client-side politeness limit, requests/s")
		seeds      = flag.String("seeds", strings.Join(geo.YouTube2011Locales, ","), "comma-separated seed country codes")
		checkpoint = flag.String("checkpoint", "", "checkpoint path (resume if present)")
		every      = flag.Int("checkpoint-every", 5000, "records between checkpoints")
	)
	flag.Parse()

	cfg := crawler.DefaultConfig()
	cfg.SeedRegions = strings.Split(*seeds, ",")
	cfg.MaxVideos = *max
	cfg.Workers = *workers
	cfg.RequestsPerSec = *rps
	cfg.CheckpointPath = *checkpoint
	cfg.CheckpointEvery = *every

	c, err := crawler.New(ytapi.NewClient(*api, *key, nil), cfg)
	if err != nil {
		return err
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	start := time.Now()
	res, err := c.Run(ctx)
	if err != nil {
		// A cancelled crawl still wrote a checkpoint; report and keep
		// whatever was collected.
		fmt.Fprintf(os.Stderr, "crawl interrupted: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "crawl: %v in %v\n", res.Stats, time.Since(start).Round(time.Millisecond))
	printWaves(res)

	if err := dataset.SaveFile(*out, res.Records); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(res.Records), *out)
	return nil
}

// printWaves summarizes the snowball's breadth-first expansion: how many
// records each BFS wave contributed.
func printWaves(res *crawler.Result) {
	if len(res.Depths) == 0 {
		return
	}
	counts := make([]int, res.Stats.MaxDepth+1)
	for _, d := range res.Depths {
		if d >= 0 && d < len(counts) {
			counts[d]++
		}
	}
	fmt.Fprint(os.Stderr, "snowball waves:")
	for d, n := range counts {
		fmt.Fprintf(os.Stderr, " %d:%d", d, n)
	}
	fmt.Fprintln(os.Stderr)
}
