// Command cachesim runs experiment E6 — the paper's proactive
// geographic-caching conjecture. It builds the full pipeline, trains the
// tag predictor on the filtered crawl, predicts every catalog video's
// view distribution from its tags, and replays a ground-truth request
// stream against five placement policies across a capacity sweep.
//
// Usage:
//
//	cachesim -synth 20000 -requests 200000 -slots 16,64,256
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"viewstags/internal/alexa"
	"viewstags/internal/geo"
	"viewstags/internal/geocache"
	"viewstags/internal/pipeline"
	"viewstags/internal/placement"
	"viewstags/internal/report"
	"viewstags/internal/synth"
	"viewstags/internal/tagviews"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		synthN     = flag.Int("synth", 10000, "synthetic catalog size")
		seed       = flag.Uint64("seed", 20110301, "generation seed")
		requests   = flag.Int("requests", 200000, "request-stream length")
		slotsArg   = flag.String("slots", "16,64,256", "comma-separated per-country cache capacities")
		sigma      = flag.Float64("alexa-noise", 0.10, "Alexa estimator noise σ")
		replicas   = flag.Int("replicas", 3, "replicas per video for the E7 placement experiment (0 = skip)")
		perCountry = flag.Bool("percountry", false, "print per-country hit ratios for the tag-push policy")
	)
	flag.Parse()

	slots, err := parseInts(*slotsArg)
	if err != nil {
		return err
	}

	acfg := alexa.DefaultConfig()
	acfg.NoiseSigma = *sigma
	res, err := pipeline.FromSynthetic(*synthN, *seed, acfg)
	if err != nil {
		return err
	}
	cat := res.Catalog

	// Tag-predicted demand for every catalog video, from the filtered
	// crawl's tag profiles (the cache never sees ground truth).
	pred, err := tagviews.NewPredictor(res.Analysis, tagviews.WeightIDF)
	if err != nil {
		return err
	}
	predictions := make([][]float64, len(cat.Videos))
	for i := range cat.Videos {
		names := cat.Videos[i].TagNames(cat.Vocab)
		if len(names) == 0 {
			continue
		}
		if p, covered := pred.Predict(names); covered {
			predictions[i] = p
		}
	}

	scfg := geocache.DefaultConfig()
	scfg.Requests = *requests
	scfg.Seed = *seed
	sim, err := geocache.NewSimulator(cat, scfg)
	if err != nil {
		return err
	}
	if err := sim.SetPredictions(predictions); err != nil {
		return err
	}

	policies := []geocache.PolicyKind{
		geocache.PolicyLRU, geocache.PolicyLFU, geocache.PolicyPopPush,
		geocache.PolicyTagPush, geocache.PolicyHybrid, geocache.PolicyOracle,
	}
	results, err := sim.Sweep(policies, slots)
	if err != nil {
		return err
	}

	t := report.NewTable("E6: slots/country", "policy", "hit ratio", "origin egress")
	i := 0
	for _, sl := range slots {
		for range policies {
			r := results[i]
			t.AddRowf("%d\t%s\t%.4f\t%d", sl, r.Policy, r.HitRatio, r.OriginEgress)
			i++
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if *perCountry {
		fmt.Println()
		if err := printPerCountry(res, sim, slots[len(slots)-1]); err != nil {
			return err
		}
	}
	if *replicas > 0 {
		fmt.Println()
		return runE7(cat, predictions, *replicas)
	}
	return nil
}

// geoID converts a dense loop index to the typed country id.
func geoID(c int) geo.CountryID { return geo.CountryID(c) }

// printPerCountry breaks the tag-push policy's hit ratio down by
// country at the largest swept capacity.
func printPerCountry(res *pipeline.Result, sim *geocache.Simulator, slots int) error {
	r, err := sim.Run(geocache.PolicyTagPush, slots)
	if err != nil {
		return err
	}
	t := report.NewTable("country", "requests", "hit ratio")
	for c := 0; c < res.World.N(); c++ {
		id := geoID(c)
		if r.CountryRequests[c] == 0 {
			continue
		}
		t.AddRowf("%s\t%d\t%.4f", res.World.Country(id).Code, r.CountryRequests[c], r.CountryHitRatio(id))
	}
	return t.Render(os.Stdout)
}

// runE7 evaluates replica placement (the storage-layer extension).
func runE7(cat *synth.Catalog, predictions [][]float64, replicas int) error {
	e, err := placement.NewEvaluator(cat, placement.Config{Replicas: replicas})
	if err != nil {
		return err
	}
	if err := e.SetPredictions(predictions); err != nil {
		return err
	}
	t := report.NewTable("E7: strategy", "replicas", "mean km to replica", "local-hit fraction")
	for _, s := range []placement.Strategy{
		placement.StrategyHome, placement.StrategyPopular,
		placement.StrategyPredicted, placement.StrategyOracle,
	} {
		r, err := e.Evaluate(s)
		if err != nil {
			return err
		}
		t.AddRowf("%s\t%d\t%.0f\t%.3f", r.Strategy, r.Replicas, r.MeanKm, r.LocalFraction)
	}
	return t.Render(os.Stdout)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("invalid slot count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
