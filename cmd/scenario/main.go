// Command scenario is the chaos/SLO harness CLI over internal/scenario:
// it boots a real serve/gateway cluster, drives a scripted open-loop
// workload with injected faults, scores the run against the scenario's
// SLOs and writes the machine-readable BENCH_scenarios.json trajectory
// artifact.
//
// Usage:
//
//	scenario list
//	scenario run -scenario chaos-smoke -out BENCH_scenarios.json
//	scenario run -spec my-scenario.json -serve-bin ./serve -gateway-bin ./gateway
//	scenario compare -baseline BENCH_scenarios.json -run /tmp/new.json
//
// `run` exits 0 only when the run completed AND every SLO passed.
// `compare` exits 0 when the run is within tolerance of the baseline
// (improvements warn, regressions fail) — the CI trajectory gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"viewstags/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runCmd(os.Args[2:])
	case "compare":
		err = compareCmd(os.Args[2:])
	case "list":
		err = listCmd()
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  scenario list                       show builtin scenarios
  scenario run [flags]                run one scenario, score its SLOs
  scenario compare [flags]            diff a run against a baseline
run flags:
  -scenario NAME   builtin scenario (see list)
  -spec FILE       JSON spec instead of a builtin
  -out FILE        write BENCH_scenarios.json here (default BENCH_scenarios.json)
  -serve-bin PATH  prebuilt cmd/serve (default: go build into the workdir)
  -gateway-bin PATH  prebuilt cmd/gateway
  -workdir DIR     scratch dir (default: temp, removed)
  -keep            keep the workdir for debugging
  -race            build the daemons with the race detector
  -trace-dump-dir DIR  flight-recorder dump directory (default: next to -out)
compare flags:
  -baseline FILE   checked-in baseline report
  -run FILE        fresh run report
  -tolerance F     relative regression budget (default 0.15)
  -latency-slack F tolerance multiplier for latency quantiles (default 3)
`)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		name     = fs.String("scenario", "", "builtin scenario name")
		specPath = fs.String("spec", "", "JSON spec file (overrides -scenario)")
		out      = fs.String("out", "BENCH_scenarios.json", "report output path")
		serveBin = fs.String("serve-bin", "", "prebuilt cmd/serve binary")
		gwBin    = fs.String("gateway-bin", "", "prebuilt cmd/gateway binary")
		workdir  = fs.String("workdir", "", "scratch directory (default: temp)")
		keep     = fs.Bool("keep", false, "keep the workdir afterward")
		race     = fs.Bool("race", false, "race-instrument the built daemons")
		dumpDir  = fs.String("trace-dump-dir", "", "flight recorder: write traces_<event>.json here on chaos events and SLO breaches (default: next to -out)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sc *scenario.Spec
	switch {
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		if sc, err = scenario.Load(data); err != nil {
			return err
		}
	case *name != "":
		var err error
		if sc, err = scenario.Builtin(*name); err != nil {
			return err
		}
	default:
		return fmt.Errorf("run needs -scenario or -spec")
	}
	dir := *dumpDir
	if dir == "" {
		dir = filepath.Dir(*out)
	}
	rep, err := scenario.Run(sc, scenario.RunOptions{
		Bins:    scenario.Binaries{Serve: *serveBin, Gateway: *gwBin},
		Workdir: *workdir,
		Keep:    *keep,
		Race:    *race,
		DumpDir: dir,
	})
	if err != nil {
		return err
	}
	if err := rep.WriteFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	fmt.Print(scenario.Scorecard(rep))
	if !rep.Pass {
		return fmt.Errorf("SLO breach (see scorecard)")
	}
	return nil
}

func compareCmd(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var (
		basePath = fs.String("baseline", "", "baseline report path")
		runPath  = fs.String("run", "", "fresh run report path")
		tol      = fs.Float64("tolerance", 0.15, "relative regression budget")
		slack    = fs.Float64("latency-slack", 3, "tolerance multiplier for latency quantiles")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *runPath == "" {
		return fmt.Errorf("compare needs -baseline and -run")
	}
	base, err := scenario.ReadReport(*basePath)
	if err != nil {
		return err
	}
	cur, err := scenario.ReadReport(*runPath)
	if err != nil {
		return err
	}
	res, err := scenario.Compare(base, cur, &scenario.CompareOptions{Tolerance: *tol, LatencySlack: *slack})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	if res.Regressions > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond tolerance", res.Regressions)
	}
	return nil
}

func listCmd() error {
	for _, name := range scenario.BuiltinNames() {
		sc, err := scenario.Builtin(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %s\n", name, sc.Description)
	}
	return nil
}
