// Command analyze reproduces the paper's dataset characterization (§2 —
// experiment T1), prints the top-tag table with geographic profiles, and
// optionally runs the E4 reconstruction-fidelity sweep over Alexa
// estimator noise.
//
// Usage:
//
//	analyze -synth 50000                 # synthetic end-to-end run
//	analyze -in dataset.jsonl.gz         # analyze a crawled dataset
//	analyze -synth 20000 -sweep          # E4 noise sweep
//	analyze -synth 20000 -tag favela     # one tag's profile + map
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"viewstags/internal/alexa"
	"viewstags/internal/dist"
	"viewstags/internal/pipeline"
	"viewstags/internal/reconstruct"
	"viewstags/internal/report"
	"viewstags/internal/stats"
	"viewstags/internal/synth"
	"viewstags/internal/tagviews"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		synthN  = flag.Int("synth", 0, "generate a synthetic catalog of this size")
		in      = flag.String("in", "", "crawled dataset file (.jsonl/.jsonl.gz)")
		seed    = flag.Uint64("seed", 20110301, "synthetic generation seed")
		sigma   = flag.Float64("alexa-noise", 0.10, "Alexa estimator noise σ")
		topK    = flag.Int("top", 15, "top tags to display")
		tag     = flag.String("tag", "", "print one tag's profile and world map")
		country = flag.String("country", "", "print one country's tag-consumption profile (ISO code)")
		sweep   = flag.Bool("sweep", false, "run the E4 reconstruction sweep over estimator noise")
		evalE5  = flag.Bool("eval", false, "run the E5 tag-predictor evaluation")
		mdPath  = flag.String("md", "", "also write a Markdown run report to this path")
	)
	flag.Parse()

	if (*synthN == 0) == (*in == "") {
		return fmt.Errorf("exactly one of -synth or -in is required")
	}

	acfg := alexa.DefaultConfig()
	acfg.NoiseSigma = *sigma
	var res *pipeline.Result
	var err error
	if *synthN > 0 {
		res, err = pipeline.FromSynthetic(*synthN, *seed, acfg)
	} else {
		res, err = pipeline.FromFile(*in, acfg)
	}
	if err != nil {
		return err
	}

	printT1(res)
	if *mdPath != "" {
		if err := writeMarkdownReport(res, *mdPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *mdPath)
	}

	if *tag != "" {
		return printTag(res, *tag)
	}
	if *country != "" {
		return printCountry(res, *country)
	}
	if *sweep {
		if res.Catalog == nil {
			return fmt.Errorf("-sweep needs -synth (ground truth required)")
		}
		return sweepE4(res.Catalog)
	}
	if *evalE5 {
		return runE5(res)
	}
	return printTopTags(res, *topK)
}

// printT1 prints the §2 dataset table (experiment T1).
func printT1(res *pipeline.Result) {
	r := res.Clean.Report
	uniqueTags, views := res.Clean.UniqueTags()
	t := report.NewTable("T1: dataset statistic", "value", "paper (§2)")
	t.AddRow("crawled videos", strconv.Itoa(r.Crawled), "1,063,844")
	t.AddRow("dropped: no tags", strconv.Itoa(r.Untagged), "6,736")
	t.AddRow("dropped: missing/empty pop vector", strconv.Itoa(r.NoPopVector+r.BadPopVector), "~365,759")
	t.AddRow("kept videos", strconv.Itoa(r.Kept), "691,349")
	t.AddRow("unique tags (kept)", strconv.Itoa(uniqueTags), "705,415")
	t.AddRow("total views (kept)", strconv.FormatInt(views, 10), "173,288,616,473")
	t.AddRowf("drop rate\t%.1f%%\t35.0%%", 100*r.DropRate())
	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "analyze: render:", err)
	}
	fmt.Println()
}

func printTopTags(res *pipeline.Result, k int) error {
	t := report.NewTable("rank", "tag", "videos", "views", "top country", "top share", "eff. countries", "spread", "JS to traffic")
	for i, p := range res.Analysis.TopTags(k) {
		t.AddRowf("%d\t%s\t%d\t%.0f\t%s\t%.1f%%\t%.1f\t%s\t%.3f",
			i+1, p.Name, p.Videos, p.TotalViews,
			res.World.Country(p.TopCountry).Code, 100*p.TopShare,
			p.EffectiveCountries, p.Spread, p.JSToTraffic)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	census := res.Analysis.SpreadCensus()
	fmt.Printf("\nspread census over %d tags: local=%d regional=%d global=%d\n",
		res.Analysis.NumTags(), census[dist.SpreadLocal], census[dist.SpreadRegional], census[dist.SpreadGlobal])
	return nil
}

func printTag(res *pipeline.Result, name string) error {
	p, ok := res.Analysis.TagProfile(name)
	if !ok {
		return fmt.Errorf("tag %q not in dataset", name)
	}
	fmt.Printf("tag %q: %d videos, %.0f views, top=%s (%.1f%%), eff=%.1f countries, spread=%s, JS-to-traffic=%.3f\n\n",
		p.Name, p.Videos, p.TotalViews, res.World.Country(p.TopCountry).Code,
		100*p.TopShare, p.EffectiveCountries, p.Spread, p.JSToTraffic)
	m, err := report.WorldMap(res.World, p.Views, fmt.Sprintf("views(%s) per country", name))
	if err != nil {
		return err
	}
	fmt.Println(m)
	bars, err := report.CountryBars(res.World, p.Views, 10)
	if err != nil {
		return err
	}
	fmt.Println(bars)
	return nil
}

// writeMarkdownReport emits a self-contained paper-vs-measured record of
// this run (the mechanical form of EXPERIMENTS.md's T1/F2/F3 sections).
func writeMarkdownReport(res *pipeline.Result, path string) error {
	m := report.NewMarkdown("viewstags run report")

	r := res.Clean.Report
	uniqueTags, views := res.Clean.UniqueTags()
	m.Section("T1 — dataset statistics (paper §2)")
	m.Table([]string{"statistic", "measured", "paper"}, [][]string{
		{"crawled videos", strconv.Itoa(r.Crawled), "1,063,844"},
		{"dropped: no tags", strconv.Itoa(r.Untagged), "6,736"},
		{"dropped: bad pop vector", strconv.Itoa(r.NoPopVector + r.BadPopVector), "~365,759"},
		{"kept videos", strconv.Itoa(r.Kept), "691,349"},
		{"unique tags", strconv.Itoa(uniqueTags), "705,415"},
		{"total views", strconv.FormatInt(views, 10), "173,288,616,473"},
		{"drop rate", fmt.Sprintf("%.1f%%", 100*r.DropRate()), "35.0%"},
	})

	m.Section("F2/F3 — tag geography (paper Figs. 2–3)")
	rows := make([][]string, 0, 8)
	for _, name := range []string{"pop", "music", "favela", "samba", "kpop"} {
		p, ok := res.Analysis.TagProfile(name)
		if !ok {
			continue
		}
		rows = append(rows, []string{
			name, strconv.Itoa(p.Videos),
			res.World.Country(p.TopCountry).Code,
			fmt.Sprintf("%.1f%%", 100*p.TopShare),
			p.Spread.String(),
			fmt.Sprintf("%.3f", p.JSToTraffic),
		})
	}
	m.Table([]string{"tag", "videos", "top country", "top share", "spread", "JS to traffic"}, rows)

	census := res.Analysis.SpreadCensus()
	m.Para("Spread census over %d tags: %d local, %d regional, %d global.",
		res.Analysis.NumTags(), census[dist.SpreadLocal], census[dist.SpreadRegional], census[dist.SpreadGlobal])

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	_, err = m.WriteTo(f)
	return err
}

// printCountry prints the dual view the title names: the distribution of
// views over tags within one country.
func printCountry(res *pipeline.Result, code string) error {
	id, ok := res.World.ByCode(code)
	if !ok {
		return fmt.Errorf("unknown country code %q", code)
	}
	p, err := res.Analysis.CountryProfile(id, 15)
	if err != nil {
		return err
	}
	fmt.Printf("country %s (%s): %.0f tag-views over %d distinct tags, Gini %.3f, entropy %.2f bits\n\n",
		code, res.World.Country(id).Name, p.TagViews, p.DistinctTags, p.Gini, p.Entropy)
	t := report.NewTable("rank", "tag", "views here", "share of country")
	for i, ts := range p.TopTags {
		t.AddRowf("%d\t%s\t%.0f\t%.2f%%", i+1, ts.Name, ts.Views, 100*ts.Share)
	}
	return t.Render(os.Stdout)
}

// sweepE4 reproduces experiment E4: reconstruction fidelity vs Alexa
// estimator noise.
func sweepE4(cat *synth.Catalog) error {
	t := report.NewTable("E4: noise σ", "mean JS", "p90 JS", "top-1 match")
	for _, sigma := range []float64{0, 0.1, 0.2, 0.4, 0.8} {
		pyt, err := alexa.Estimate(cat.World, alexa.Config{NoiseSigma: sigma, Seed: 2011})
		if err != nil {
			return err
		}
		var js []float64
		matches, n := 0, 0
		for i := range cat.Videos {
			v := &cat.Videos[i]
			if v.PopState != synth.PopStateOK || v.TotalViews < 1000 {
				continue
			}
			rec, err := reconstruct.Views(v.PopVector, pyt, v.TotalViews)
			if err != nil {
				continue
			}
			q, err := reconstruct.Score(rec, v.TrueViews)
			if err != nil {
				return err
			}
			js = append(js, q.JS)
			if q.TopMatch {
				matches++
			}
			n++
		}
		if n == 0 {
			return fmt.Errorf("no scorable videos")
		}
		t.AddRowf("%.2f\t%.4f\t%.4f\t%.1f%%",
			sigma, stats.Mean(js), stats.Quantile(js, 0.9), 100*float64(matches)/float64(n))
	}
	return t.Render(os.Stdout)
}

// runE5 reproduces experiment E5: the tag predictor vs baselines.
func runE5(res *pipeline.Result) error {
	t := report.NewTable("E5: weighting", "JS tags", "JS prior", "JS upload", "top1 tags", "top1 prior", "top1 upload")
	for _, w := range []tagviews.Weighting{tagviews.WeightUniform, tagviews.WeightByViews, tagviews.WeightIDF} {
		cfg := tagviews.DefaultEvalConfig()
		cfg.Weighting = w
		r, err := tagviews.Evaluate(res.World, res.Clean.Records, res.Clean.Pop, res.Pyt, cfg)
		if err != nil {
			return err
		}
		t.AddRowf("%s\t%.4f\t%.4f\t%.4f\t%.3f\t%.3f\t%.3f",
			w, r.TagJS, r.PriorJS, r.UploadJS, r.TagTop1, r.PriorTop1, r.UploadTop1)
	}
	return t.Render(os.Stdout)
}
