package main

import "sync/atomic"

// uploadDedup coordinates the one-time Upload announcement per catalog
// video across all workers: the daemon's corpus is one, so a video must
// be flagged Upload on at most one *successful* ingest batch no matter
// which workers draw it or how often batches are shed.
//
// The protocol is strict CAS ownership. claim(v) atomically takes the
// flag; the winner — and only the winner — either confirms the claim
// (its batch was accepted, the flag stays set forever) or releases it
// (its batch was shed or failed, so the announcement must be retried by
// whoever claims next). release is itself a CAS(true→false), not a
// blind store: a blind store could clear a flag it no longer owns —
// e.g. a worker that erroneously released twice would wipe out the
// claim of a concurrently successful worker, and the video would be
// announced (and its document-frequency counted) twice.
type uploadDedup struct {
	flags []atomic.Bool
}

func newUploadDedup(n int) *uploadDedup {
	return &uploadDedup{flags: make([]atomic.Bool, n)}
}

// claim attempts to take ownership of video v's announcement. Exactly
// one concurrent caller wins; the winner must later release on failure
// and do nothing on success.
func (d *uploadDedup) claim(v int) bool {
	return d.flags[v].CompareAndSwap(false, true)
}

// release returns v's claim after a failed announcement, re-arming it
// for the next worker that draws the video. It reports whether the
// release actually happened; false means the flag was not held — a
// protocol violation by the caller (released without claiming, or
// released twice), never silent double-announcement exposure.
func (d *uploadDedup) release(v int) bool {
	return d.flags[v].CompareAndSwap(true, false)
}
