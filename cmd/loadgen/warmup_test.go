package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"viewstags/internal/server"
)

// TestWarmupWindowExcludedFromBenchOut is the -warmup regression test,
// run against the real binary: a stub daemon serves /v1/predict slowly
// for the first stretch of the run and instantly afterward. With a
// warmup window covering the slow stretch, the bench-out report must
// (a) tally the slow requests as warmup-excluded, (b) keep them out of
// the latency quantiles, and (c) compute rates over the measured
// window, not the full wall clock — exactly the three ways an
// unexcluded cold start skews a short run.
func TestWarmupWindowExcludedFromBenchOut(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the loadgen binary; skipped in -short mode")
	}

	const (
		slowFor   = 600 * time.Millisecond // slow stretch, from the first request seen
		slowSleep = 300 * time.Millisecond
		warmup    = 1200 * time.Millisecond // covers every slow completion with margin
		duration  = 2400 * time.Millisecond
	)

	// Stub daemon: a fixed known answer; slowness keyed off the first
	// request's arrival so the schedule follows the loadgen's own probe.
	var (
		mu    sync.Mutex
		first time.Time
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		if first.IsZero() {
			first = time.Now()
		}
		slow := time.Since(first) < slowFor
		mu.Unlock()
		if slow {
			time.Sleep(slowSleep)
		}
		resp := server.PredictResponse{Result: &server.PredictResult{
			Known: true,
			Top:   []server.CountryShare{{Country: "br", Share: 1}},
		}}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&resp)
	}))
	defer ts.Close()

	dir := t.TempDir()
	bin := filepath.Join(dir, "loadgen")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	benchPath := filepath.Join(dir, "BENCH_loadgen.json")
	cmd := exec.Command(bin,
		"-url", ts.URL,
		"-videos", "200",
		"-duration", duration.String(),
		"-warmup", warmup.String(),
		"-concurrency", "2",
		"-batch", "1",
		"-bench-out", benchPath,
	)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out)
	}

	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bench-out is not valid JSON: %v\n%s", err, raw)
	}
	if rep.Schema != benchSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, benchSchema)
	}
	if rep.Config.Warmup != warmup.String() {
		t.Fatalf("config.warmup = %q, want %q", rep.Config.Warmup, warmup.String())
	}
	if rep.Read == nil || rep.Read.Requests == 0 {
		t.Fatalf("no measured reads: %+v", rep.Read)
	}
	if rep.Read.Warmup == 0 {
		t.Fatal("no requests tallied as warmup-excluded; the window did nothing")
	}
	// The slow stretch served 300ms responses; the measured stream is
	// pure loopback. Any leak of a slow completion into the sketches
	// drags max (and p99) to ~300ms.
	if rep.Read.Latency.MaxMs >= 150 {
		t.Fatalf("slow warmup completions leaked into measured latency: max=%.1fms p99=%.1fms",
			rep.Read.Latency.MaxMs, rep.Read.Latency.P99Ms)
	}
	// Rates must use the measured window. Closed-loop at concurrency 2
	// on loopback sustains far more than requests/elapsed would suggest;
	// cross-check the denominator directly.
	wantMeasured := (duration - warmup).Seconds()
	if rep.MeasuredSeconds < wantMeasured*0.9 || rep.MeasuredSeconds > wantMeasured*1.5 {
		t.Fatalf("measured_seconds = %.2f, want ~%.2f", rep.MeasuredSeconds, wantMeasured)
	}
	gotRate := rep.Read.RequestsPerSec
	wantRate := float64(rep.Read.Requests) / rep.MeasuredSeconds
	if gotRate < wantRate*0.99 || gotRate > wantRate*1.01 {
		t.Fatalf("requests_per_sec = %.1f, want %.1f (over the measured window)", gotRate, wantRate)
	}
}
