// Command loadgen is the closed-loop load generator for cmd/serve: it
// regenerates the daemon's synthetic catalog (same -videos/-seed ⇒ same
// video ids and tag sets), replays a Zipf-distributed upload stream
// against /v1/predict — fresh uploads are dominated by a popular head,
// exactly the arrival process a UGC ingest sees — and reports sustained
// throughput plus p50/p90/p99 latency from P² streaming sketches
// (internal/stats), so the report costs O(1) memory at any request
// count.
//
// With -ingest-frac > 0 it runs in mixed read/write mode: that fraction
// of requests become POST /v1/ingest batches of live view events (video
// id, tags, traffic-weighted viewing country, view delta; first-drawn
// videos are flagged as uploads), so the write path — accumulation,
// backpressure, and the periodic snapshot folds it triggers — shows up
// in its own p50/p90/p99 block next to the read path's.
//
// With -warmup > 0 the first stretch of the run is excluded from every
// reported number (console and -bench-out alike): requests completing
// inside the window are tallied only as "warmup excluded", and rates
// are computed over the measured remainder. The first seconds of a run
// measure connection setup and cold caches, and on a short run they
// visibly skew p99.
//
// Collection runs on scenario.Collector — the same warmup-aware,
// P²-backed stream accounting the chaos harness scores SLOs with — so
// the two load paths cannot drift in what "p99" or "error" means.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8091 -duration 10s -concurrency 4
//	loadgen -url http://127.0.0.1:8091 -batch 32        # batched predicts
//	loadgen -url http://127.0.0.1:8091 -ingest-frac 0.2 # mixed read/write
//	loadgen -url http://127.0.0.1:8091 -warmup 2s       # measure the warm steady state
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"viewstags/internal/obs"
	"viewstags/internal/scenario"
	"viewstags/internal/server"
	"viewstags/internal/synth"
	"viewstags/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// uploadItem is one catalog video as the upload/view stream sees it.
type uploadItem struct {
	id   string
	tags []string
}

func run() error {
	var concurrency int
	// -conc is the short spelling: a coalescing gateway only shows its
	// win with many in-flight singles, so the recipes in OPERATIONS.md
	// lean on high closed-loop concurrency and the short flag keeps
	// them readable. Both names set the same knob; last one wins.
	flag.IntVar(&concurrency, "concurrency", 4, "closed-loop workers")
	flag.IntVar(&concurrency, "conc", 4, "alias for -concurrency")
	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8091", "serve daemon base URL")
		videos      = flag.Int("videos", 20000, "catalog size (must match the daemon)")
		seed        = flag.Uint64("seed", 20110301, "catalog seed (must match the daemon)")
		duration    = flag.Duration("duration", 10*time.Second, "test length")
		batch       = flag.Int("batch", 4, "items per request (1 = single predict; small batches mirror an ingest pipeline)")
		weighting   = flag.String("weighting", "idf", "prediction weighting scheme")
		zipfS       = flag.Float64("zipf", 1.1, "upload-stream Zipf exponent")
		ingestFrac  = flag.Float64("ingest-frac", 0, "fraction of requests that are /v1/ingest event batches (0 = read-only)")
		warmup      = flag.Duration("warmup", 0, "initial window excluded from all reported numbers (0 = measure everything)")
		targetsFlag = flag.String("targets", "", "comma-separated base URLs to spread workers across (overrides -url; e.g. several gateways, or shards driven directly)")
		benchOut    = flag.String("bench-out", "", "also write the run's results as machine-readable JSON to this path (e.g. BENCH_loadgen.json)")
		slowestN    = flag.Int("slowest", 8, "track this many slowest request ids per stream for /debug/traces cross-referencing (0 = off)")
	)
	flag.Parse()
	if concurrency < 1 || *batch < 1 {
		return fmt.Errorf("concurrency and batch must be >= 1")
	}
	if *ingestFrac < 0 || *ingestFrac > 1 {
		return fmt.Errorf("ingest-frac must be in [0, 1]")
	}
	if *warmup < 0 || *warmup >= *duration {
		return fmt.Errorf("warmup must be in [0, duration)")
	}
	// Workers are pinned target[w mod n]-style, so every target gets an
	// equal worker share and each worker keeps one hot keep-alive pool.
	targets := []string{*baseURL}
	if *targetsFlag != "" {
		targets = targets[:0]
		for _, t := range strings.Split(*targetsFlag, ",") {
			if t = strings.TrimSuffix(strings.TrimSpace(t), "/"); t != "" {
				targets = append(targets, t)
			}
		}
		if len(targets) == 0 {
			return fmt.Errorf("no usable targets in -targets %q", *targetsFlag)
		}
	}

	fmt.Fprintf(os.Stderr, "regenerating %d-video catalog (seed %d)...\n", *videos, *seed)
	cfg := synth.DefaultConfig(*videos)
	cfg.Seed = *seed
	cat, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	// Tagged videos: the alphabet of both the upload replay (reads) and
	// the view-event stream (writes).
	var items []uploadItem
	for i := range cat.Videos {
		if names := cat.Videos[i].TagNames(cat.Vocab); len(names) > 0 {
			items = append(items, uploadItem{id: cat.Videos[i].ID, tags: names})
		}
	}
	if len(items) == 0 {
		return fmt.Errorf("catalog has no tagged videos")
	}
	countryCodes := cat.World.Codes()

	// One shared transport with enough idle conns for every worker keeps
	// the loop on hot keep-alive connections.
	transport := &http.Transport{
		MaxIdleConns:        concurrency * 2,
		MaxIdleConnsPerHost: concurrency * 2,
	}
	client := &http.Client{Transport: transport, Timeout: 10 * time.Second}

	// Fail fast when a daemon is missing or serving another catalog.
	for _, target := range targets {
		probe, err := predictOnce(client, target+"/v1/predict", items[0].tags, *weighting, 1)
		if err != nil {
			return fmt.Errorf("probe: %w (is cmd/serve or cmd/gateway running at %s?)", err, target)
		}
		if !probe {
			fmt.Fprintf(os.Stderr, "warning: probe tags unknown at %s — catalog seed/size mismatch, or a lone shard holding a partial vocabulary?\n", target)
		}
	}

	reads, err := scenario.NewCollector(time.Time{})
	if err != nil {
		return err
	}
	writes, err := scenario.NewCollector(time.Time{})
	if err != nil {
		return err
	}
	// dedup coordinates the one-time Upload flag per video across all
	// workers — CAS claim/release ownership, see dedup.go.
	var dedup *uploadDedup
	if *ingestFrac > 0 {
		dedup = newUploadDedup(len(items))
	}
	startWall := time.Now()
	deadline := startWall.Add(*duration)
	if *warmup > 0 {
		cutoff := startWall.Add(*warmup)
		reads.SetCutoff(cutoff)
		writes.SetCutoff(cutoff)
	}
	// Slowest-request ledgers: the daemon echoes X-Request-Id on every
	// response, and its trace ring retains the slowest requests per
	// route — recording the worst ids here lets a bench regression be
	// cross-referenced against GET /debug/traces/{id} right after a run.
	slowReads := newSlowTracker(*slowestN, startWall, startWall.Add(*warmup))
	slowWrites := newSlowTracker(*slowestN, startWall, startWall.Add(*warmup))
	var wg sync.WaitGroup
	for wkr := 0; wkr < concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			predictURL := targets[wkr%len(targets)] + "/v1/predict"
			ingestURL := targets[wkr%len(targets)] + "/v1/ingest"
			src := xrand.NewSource(uint64(wkr) + 1)
			zipf := xrand.NewZipf(src.Fork("uploads"), *zipfS, len(items))
			viewer := xrand.NewCategorical(src.Fork("viewers"), cat.World.Traffic())
			mix := src.Fork("mix")
			views := src.Fork("views")
			var body bytes.Buffer
			for time.Now().Before(deadline) {
				body.Reset()
				if mix.Bernoulli(*ingestFrac) {
					req := server.IngestRequest{Events: make([]server.IngestEvent, *batch)}
					var flagged []int // videos this worker's claims cover
					for i := range req.Events {
						v := zipf.Rank()
						// claim takes the one-time Upload flag across all
						// workers; a shed or failed batch releases exactly
						// the claims this worker holds (CAS ownership, see
						// dedup.go) so the announcement is retried.
						upload := dedup.claim(v)
						if upload {
							flagged = append(flagged, v)
						}
						req.Events[i] = server.IngestEvent{
							Video:   items[v].id,
							Tags:    items[v].tags,
							Country: countryCodes[viewer.Draw()],
							Views:   float64(1 + views.Intn(50)),
							Upload:  upload,
						}
					}
					encodeErr := json.NewEncoder(&body).Encode(&req)
					var accepted int64
					var shed bool
					var err error = encodeErr
					if encodeErr == nil {
						start := time.Now()
						var rid string
						accepted, shed, rid, err = postIngest(client, ingestURL, &body)
						done := time.Now()
						writes.Observe(done.Sub(start), accepted, 0, err != nil, shed, done)
						slowWrites.observe(rid, done.Sub(start), done)
					} else {
						writes.Observe(0, 0, 0, true, false, time.Now())
					}
					if err != nil || shed {
						for _, v := range flagged {
							if !dedup.release(v) {
								// Unreachable while the claim protocol
								// holds; loudly visible if it regresses.
								fmt.Fprintf(os.Stderr, "loadgen: BUG: released upload claim %d twice\n", v)
							}
						}
					}
				} else {
					req := server.PredictRequest{Weighting: *weighting, Top: 3}
					if *batch == 1 {
						req.Tags = items[zipf.Rank()].tags
					} else {
						req.Batch = make([]server.PredictItem, *batch)
						for i := range req.Batch {
							req.Batch[i] = server.PredictItem{Tags: items[zipf.Rank()].tags}
						}
					}
					if err := json.NewEncoder(&body).Encode(&req); err != nil {
						reads.Observe(0, 0, 0, true, false, time.Now())
						continue
					}
					start := time.Now()
					preds, fallback, rid, err := postPredict(client, predictURL, &body)
					done := time.Now()
					reads.Observe(done.Sub(start), preds, fallback, err != nil, false, done)
					slowReads.observe(rid, done.Sub(start), done)
				}
			}
		}(wkr)
	}
	wg.Wait()

	elapsed := time.Since(startWall)
	// Every rate and both reports run over the measured window: the
	// warmup stretch contributed no counted observations, so dividing by
	// the full elapsed time would understate sustained throughput.
	measured := elapsed - *warmup
	if *ingestFrac < 1 {
		reads.Report("read ", "predictions", measured, *batch)
	}
	if *ingestFrac > 0 {
		writes.Report("write", "events", measured, *batch)
	}
	if *benchOut != "" {
		rep := &benchReport{
			Schema: benchSchema,
			Config: benchConfig{
				Targets:     targets,
				Concurrency: concurrency,
				Batch:       *batch,
				Duration:    duration.String(),
				Warmup:      warmup.String(),
				Weighting:   *weighting,
				IngestFrac:  *ingestFrac,
				Videos:      *videos,
				Seed:        *seed,
				Zipf:        *zipfS,
			},
			ElapsedSeconds:  elapsed.Seconds(),
			MeasuredSeconds: measured.Seconds(),
		}
		if *ingestFrac < 1 {
			s := reads.Snapshot(measured)
			rep.Read = &s
			rep.SlowestRead = slowReads.list()
		}
		if *ingestFrac > 0 {
			s := writes.Snapshot(measured)
			rep.Write = &s
			rep.SlowestWrite = slowWrites.list()
		}
		if err := writeBenchReport(*benchOut, rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *benchOut)
	}
	// Success means each requested stream actually flowed: reads unless
	// the mix is pure-write, writes whenever a write fraction was asked.
	if *ingestFrac < 1 && reads.Items() == 0 {
		return fmt.Errorf("no successful predictions")
	}
	if *ingestFrac > 0 && writes.Items() == 0 {
		return fmt.Errorf("no accepted ingest events")
	}
	return nil
}

// postPredict sends one request and returns (#predictions, #fallbacks,
// echoed X-Request-Id). The id is read before any status check so even
// errored requests stay traceable.
func postPredict(client *http.Client, endpoint string, body io.Reader) (int64, int64, string, error) {
	resp, err := client.Post(endpoint, "application/json", body)
	if err != nil {
		return 0, 0, "", err
	}
	defer func() { _ = resp.Body.Close() }()
	rid := resp.Header.Get(obs.TraceHeader)
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, 0, rid, fmt.Errorf("status %d", resp.StatusCode)
	}
	var pr server.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return 0, 0, rid, err
	}
	var preds, fallback int64
	if pr.Result != nil {
		preds = 1
		if !pr.Result.Known {
			fallback = 1
		}
	}
	for i := range pr.Results {
		preds++
		if !pr.Results[i].Known {
			fallback++
		}
	}
	return preds, fallback, rid, nil
}

// postIngest sends one event batch and returns (#accepted, shed, echoed
// X-Request-Id). A 503 is backpressure — the daemon shedding load by
// design — reported separately from errors.
func postIngest(client *http.Client, endpoint string, body io.Reader) (int64, bool, string, error) {
	resp, err := client.Post(endpoint, "application/json", body)
	if err != nil {
		return 0, false, "", err
	}
	defer func() { _ = resp.Body.Close() }()
	rid := resp.Header.Get(obs.TraceHeader)
	if resp.StatusCode == http.StatusServiceUnavailable {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, true, rid, nil
	}
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, false, rid, fmt.Errorf("status %d", resp.StatusCode)
	}
	var ir server.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		return 0, false, rid, err
	}
	return int64(ir.Accepted), false, rid, nil
}

// predictOnce round-trips a single probe request.
func predictOnce(client *http.Client, endpoint string, tags []string, weighting string, top int) (bool, error) {
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(server.PredictRequest{Tags: tags, Weighting: weighting, Top: top}); err != nil {
		return false, err
	}
	resp, err := client.Post(endpoint, "application/json", &body)
	if err != nil {
		return false, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return false, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	var pr server.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return false, err
	}
	return pr.Result != nil && pr.Result.Known, nil
}
