// Command loadgen is the closed-loop load generator for cmd/serve: it
// regenerates the daemon's synthetic catalog (same -videos/-seed ⇒ same
// tag sets), replays a Zipf-distributed upload stream against
// /v1/predict — fresh uploads are dominated by a popular head, exactly
// the arrival process a UGC ingest sees — and reports sustained
// throughput plus p50/p90/p99 latency from P² streaming sketches
// (internal/stats), so the report costs O(1) memory at any request
// count.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8091 -duration 10s -concurrency 4
//	loadgen -url http://127.0.0.1:8091 -batch 32   # batched predicts
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"viewstags/internal/server"
	"viewstags/internal/stats"
	"viewstags/internal/synth"
	"viewstags/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// collector aggregates worker observations behind one mutex; at predict
// rates the lock is uncontended enough to vanish in the HTTP cost.
type collector struct {
	mu       sync.Mutex
	p50      *stats.P2Quantile
	p90      *stats.P2Quantile
	p99      *stats.P2Quantile
	lat      stats.Summary
	requests int64
	preds    int64
	errors   int64
	fallback int64 // predictions answered from the prior (known=false)
}

func newCollector() (*collector, error) {
	c := &collector{}
	for _, q := range []struct {
		p    **stats.P2Quantile
		frac float64
	}{{&c.p50, 0.5}, {&c.p90, 0.9}, {&c.p99, 0.99}} {
		est, err := stats.NewP2Quantile(q.frac)
		if err != nil {
			return nil, err
		}
		*q.p = est
	}
	return c, nil
}

func (c *collector) observe(latency time.Duration, preds, fallback int64, failed bool) {
	ms := float64(latency.Nanoseconds()) / 1e6
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	if failed {
		c.errors++
		return
	}
	c.p50.Add(ms)
	c.p90.Add(ms)
	c.p99.Add(ms)
	c.lat.Add(ms)
	c.preds += preds
	c.fallback += fallback
}

func run() error {
	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8091", "serve daemon base URL")
		videos      = flag.Int("videos", 20000, "catalog size (must match the daemon)")
		seed        = flag.Uint64("seed", 20110301, "catalog seed (must match the daemon)")
		duration    = flag.Duration("duration", 10*time.Second, "test length")
		concurrency = flag.Int("concurrency", 4, "closed-loop workers")
		batch       = flag.Int("batch", 4, "uploads per request (1 = single predict; small batches mirror an ingest pipeline)")
		weighting   = flag.String("weighting", "idf", "prediction weighting scheme")
		zipfS       = flag.Float64("zipf", 1.1, "upload-stream Zipf exponent")
	)
	flag.Parse()
	if *concurrency < 1 || *batch < 1 {
		return fmt.Errorf("concurrency and batch must be >= 1")
	}

	fmt.Fprintf(os.Stderr, "regenerating %d-video catalog (seed %d)...\n", *videos, *seed)
	cfg := synth.DefaultConfig(*videos)
	cfg.Seed = *seed
	cat, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	// Tag lists of the tagged videos, the upload stream's alphabet.
	var tagSets [][]string
	for i := range cat.Videos {
		if names := cat.Videos[i].TagNames(cat.Vocab); len(names) > 0 {
			tagSets = append(tagSets, names)
		}
	}
	if len(tagSets) == 0 {
		return fmt.Errorf("catalog has no tagged videos")
	}

	// One shared transport with enough idle conns for every worker keeps
	// the loop on hot keep-alive connections.
	transport := &http.Transport{
		MaxIdleConns:        *concurrency * 2,
		MaxIdleConnsPerHost: *concurrency * 2,
	}
	client := &http.Client{Transport: transport, Timeout: 10 * time.Second}
	endpoint := *baseURL + "/v1/predict"

	// Fail fast when the daemon is missing or serving another catalog.
	probe, err := predictOnce(client, endpoint, tagSets[0], *weighting, 1)
	if err != nil {
		return fmt.Errorf("probe: %w (is cmd/serve running at %s?)", err, *baseURL)
	}
	if !probe {
		fmt.Fprintln(os.Stderr, "warning: probe tags unknown to the daemon — catalog seed/size mismatch?")
	}

	col, err := newCollector()
	if err != nil {
		return err
	}
	startWall := time.Now()
	deadline := startWall.Add(*duration)
	var wg sync.WaitGroup
	for wkr := 0; wkr < *concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			src := xrand.NewSource(uint64(wkr) + 1)
			zipf := xrand.NewZipf(src.Fork("uploads"), *zipfS, len(tagSets))
			var body bytes.Buffer
			for time.Now().Before(deadline) {
				body.Reset()
				req := server.PredictRequest{Weighting: *weighting, Top: 3}
				if *batch == 1 {
					req.Tags = tagSets[zipf.Rank()]
				} else {
					req.Batch = make([]server.PredictItem, *batch)
					for i := range req.Batch {
						req.Batch[i] = server.PredictItem{Tags: tagSets[zipf.Rank()]}
					}
				}
				if err := json.NewEncoder(&body).Encode(&req); err != nil {
					col.observe(0, 0, 0, true)
					continue
				}
				start := time.Now()
				preds, fallback, err := postPredict(client, endpoint, &body)
				col.observe(time.Since(start), preds, fallback, err != nil)
			}
		}(wkr)
	}
	wg.Wait()

	elapsed := time.Since(startWall)
	col.mu.Lock()
	defer col.mu.Unlock()
	fmt.Printf("requests      %d (%.0f req/s, %d errors)\n",
		col.requests, float64(col.requests)/elapsed.Seconds(), col.errors)
	fmt.Printf("predictions   %d (%.0f preds/s, batch=%d, %d prior-fallbacks)\n",
		col.preds, float64(col.preds)/elapsed.Seconds(), *batch, col.fallback)
	fmt.Printf("latency ms    mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
		col.lat.Mean(), col.p50.Value(), col.p90.Value(), col.p99.Value(), col.lat.Max())
	if col.preds == 0 {
		return fmt.Errorf("no successful predictions")
	}
	return nil
}

// postPredict sends one request and returns (#predictions, #fallbacks).
func postPredict(client *http.Client, endpoint string, body io.Reader) (int64, int64, error) {
	resp, err := client.Post(endpoint, "application/json", body)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var pr server.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return 0, 0, err
	}
	var preds, fallback int64
	if pr.Result != nil {
		preds = 1
		if !pr.Result.Known {
			fallback = 1
		}
	}
	for i := range pr.Results {
		preds++
		if !pr.Results[i].Known {
			fallback++
		}
	}
	return preds, fallback, nil
}

// predictOnce round-trips a single probe request.
func predictOnce(client *http.Client, endpoint string, tags []string, weighting string, top int) (bool, error) {
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(server.PredictRequest{Tags: tags, Weighting: weighting, Top: top}); err != nil {
		return false, err
	}
	resp, err := client.Post(endpoint, "application/json", &body)
	if err != nil {
		return false, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return false, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	var pr server.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return false, err
	}
	return pr.Result != nil && pr.Result.Known, nil
}
