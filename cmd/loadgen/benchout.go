package main

import (
	"encoding/json"
	"fmt"
	"os"

	"viewstags/internal/scenario"
)

// benchSchema versions the BENCH_loadgen.json layout so CI tooling can
// reject a file written by an incompatible loadgen. The stream blocks
// are scenario.Stream — shared with BENCH_scenarios.json — so the two
// documents agree field-for-field on what a stream looks like.
// v2 added the slowest_read/slowest_write request-id blocks; consumers
// reading the v1 fields by name are unaffected.
const benchSchema = "viewstags-loadgen/v2"

// benchConfig records the knobs that produced a run — enough to
// reproduce it, and for trend tooling to refuse to compare runs with
// different shapes.
type benchConfig struct {
	Targets     []string `json:"targets"`
	Concurrency int      `json:"concurrency"`
	Batch       int      `json:"batch"`
	Duration    string   `json:"duration"`
	Warmup      string   `json:"warmup,omitempty"`
	Weighting   string   `json:"weighting"`
	IngestFrac  float64  `json:"ingest_frac"`
	Videos      int      `json:"videos"`
	Seed        uint64   `json:"seed"`
	Zipf        float64  `json:"zipf"`
}

// benchReport is the whole BENCH_loadgen.json document. Elapsed is the
// wall clock of the run; Measured excludes the warmup window and is the
// denominator of every rate in the stream blocks.
// SlowestRead/SlowestWrite are the worst measured request ids per
// stream (slowest first, warmup excluded) — the cross-reference keys
// into the serving tier's /debug/traces ring.
type benchReport struct {
	Schema          string           `json:"schema"`
	Config          benchConfig      `json:"config"`
	ElapsedSeconds  float64          `json:"elapsed_seconds"`
	MeasuredSeconds float64          `json:"measured_seconds"`
	Read            *scenario.Stream `json:"read,omitempty"`
	Write           *scenario.Stream `json:"write,omitempty"`
	SlowestRead     []slowRequest    `json:"slowest_read,omitempty"`
	SlowestWrite    []slowRequest    `json:"slowest_write,omitempty"`
}

// writeBenchReport writes the document to path atomically (temp +
// rename), so a watcher never reads a half-written file.
func writeBenchReport(path string, rep *benchReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("bench-out: %w", err)
	}
	return nil
}
