package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// benchSchema versions the BENCH_loadgen.json layout so CI tooling can
// reject a file written by an incompatible loadgen.
const benchSchema = "viewstags-loadgen/v1"

// benchConfig records the knobs that produced a run — enough to
// reproduce it, and for trend tooling to refuse to compare runs with
// different shapes.
type benchConfig struct {
	Targets     []string `json:"targets"`
	Concurrency int      `json:"concurrency"`
	Batch       int      `json:"batch"`
	Duration    string   `json:"duration"`
	Weighting   string   `json:"weighting"`
	IngestFrac  float64  `json:"ingest_frac"`
	Videos      int      `json:"videos"`
	Seed        uint64   `json:"seed"`
	Zipf        float64  `json:"zipf"`
}

// benchLatency is one stream's latency block, milliseconds throughout,
// from the same P² sketches the console report prints.
type benchLatency struct {
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// benchStream is one direction's (read or write) machine-readable
// block. Items are predictions served or events accepted.
type benchStream struct {
	Requests       int64        `json:"requests"`
	Items          int64        `json:"items"`
	Errors         int64        `json:"errors"`
	Shed           int64        `json:"shed"`
	Fallbacks      int64        `json:"fallbacks,omitempty"`
	RequestsPerSec float64      `json:"requests_per_sec"`
	ItemsPerSec    float64      `json:"items_per_sec"`
	Latency        benchLatency `json:"latency"`
}

// benchReport is the whole BENCH_loadgen.json document.
type benchReport struct {
	Schema         string       `json:"schema"`
	Config         benchConfig  `json:"config"`
	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Read           *benchStream `json:"read,omitempty"`
	Write          *benchStream `json:"write,omitempty"`
}

// stream snapshots a collector into the machine-readable block.
func (c *collector) stream(elapsed time.Duration) *benchStream {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &benchStream{
		Requests:       c.requests,
		Items:          c.items,
		Errors:         c.errors,
		Shed:           c.shed,
		Fallbacks:      c.fallback,
		RequestsPerSec: float64(c.requests) / elapsed.Seconds(),
		ItemsPerSec:    float64(c.items) / elapsed.Seconds(),
		Latency: benchLatency{
			MeanMs: c.lat.Mean(),
			P50Ms:  c.p50.Value(),
			P90Ms:  c.p90.Value(),
			P99Ms:  c.p99.Value(),
			MaxMs:  c.lat.Max(),
		},
	}
}

// writeBenchReport writes the document to path atomically (temp +
// rename), so a watcher never reads a half-written file.
func writeBenchReport(path string, rep *benchReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("bench-out: %w", err)
	}
	return nil
}
