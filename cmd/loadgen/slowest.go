package main

import (
	"sync"
	"time"
)

// slowRequest is one of the slowest measured requests of a stream: its
// X-Request-Id as echoed by the daemon, its wall latency, and when it
// completed relative to run start. The id is the cross-reference key
// into the serving tier's trace ring — `GET /debug/traces/{id}` on the
// gateway returns the stitched per-stage breakdown, as long as the
// request was slow enough (or broken enough) for tail sampling to
// retain it; see OPERATIONS.md "Trace triage".
type slowRequest struct {
	ID        string  `json:"request_id"`
	Ms        float64 `json:"ms"`
	AtSeconds float64 `json:"at_seconds"`
}

// slowTracker keeps the N slowest requests observed across all
// workers, slowest first. Warmup-window completions are excluded, like
// every other reported number. Linear insertion is fine: N is small
// and the fast path (not slow enough to place) is one comparison under
// the lock.
type slowTracker struct {
	n      int
	start  time.Time
	cutoff time.Time // completions before this (warmup) are ignored

	mu   sync.Mutex
	reqs []slowRequest
}

func newSlowTracker(n int, start, cutoff time.Time) *slowTracker {
	return &slowTracker{n: n, start: start, cutoff: cutoff}
}

// observe offers one completed request. Requests that carried no id
// (transport error before any response) are skipped — there is nothing
// to look up.
func (t *slowTracker) observe(id string, d time.Duration, done time.Time) {
	if t == nil || t.n <= 0 || id == "" || done.Before(t.cutoff) {
		return
	}
	ms := float64(d) / float64(time.Millisecond)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.reqs) == t.n && ms <= t.reqs[len(t.reqs)-1].Ms {
		return
	}
	at := done.Sub(t.start).Seconds()
	i := len(t.reqs)
	for i > 0 && t.reqs[i-1].Ms < ms {
		i--
	}
	if len(t.reqs) < t.n {
		t.reqs = append(t.reqs, slowRequest{})
	}
	copy(t.reqs[i+1:], t.reqs[i:])
	t.reqs[i] = slowRequest{ID: id, Ms: ms, AtSeconds: at}
}

// list returns the tracked requests, slowest first.
func (t *slowTracker) list() []slowRequest {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]slowRequest(nil), t.reqs...)
}
