package main

import (
	"sync"
	"sync/atomic"
	"testing"

	"viewstags/internal/xrand"
)

// TestUploadDedupOwnership drives the claim/release protocol the worker
// loop uses from many goroutines against a flaky in-process "daemon"
// (it sheds a third of batches), under -race, and asserts the invariant
// the dedup exists for: every video's Upload flag reaches the server on
// at most one successful batch, no matter how claims and releases
// interleave across workers.
func TestUploadDedupOwnership(t *testing.T) {
	const videos, workers, iters = 64, 8, 4000
	dedup := newUploadDedup(videos)
	var announced [videos]atomic.Int64 // successful upload announcements

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := xrand.NewSource(uint64(w) + 1)
			draws := src.Fork("draws")
			fate := src.Fork("fate")
			for i := 0; i < iters; i++ {
				v := draws.Intn(videos)
				claimed := dedup.claim(v)
				// The "request": sheds ~1/3 of the time, like a daemon
				// under backpressure.
				ok := !fate.Bernoulli(1.0 / 3)
				if ok {
					if claimed {
						announced[v].Add(1)
					}
				} else if claimed {
					if !dedup.release(v) {
						t.Errorf("video %d: release failed while holding the claim", v)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	for v := range announced {
		if n := announced[v].Load(); n > 1 {
			t.Errorf("video %d announced as upload %d times — corpus double-count", v, n)
		}
	}
}

// TestUploadDedupReleaseWithoutClaim pins release's contract: releasing
// an unheld flag reports false (the protocol violation is surfaced, not
// absorbed by clearing someone else's claim).
func TestUploadDedupReleaseWithoutClaim(t *testing.T) {
	d := newUploadDedup(2)
	if d.release(0) {
		t.Fatal("released a never-claimed flag")
	}
	if !d.claim(0) {
		t.Fatal("claim failed on a fresh flag")
	}
	if !d.release(0) {
		t.Fatal("owner release failed")
	}
	if d.release(0) {
		t.Fatal("double release succeeded — this is exactly the bug CAS ownership prevents")
	}
}
