// Command ytsim serves the simulated 2011 YouTube Data API over a
// synthetic catalog — the crawl target for cmd/crawl.
//
// Usage:
//
//	ytsim -videos 50000 -addr :8080 [-key KEY] [-rate 100] [-fault 0.01]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"viewstags/internal/relgraph"
	"viewstags/internal/synth"
	"viewstags/internal/xrand"
	"viewstags/internal/ytapi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ytsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		videos  = flag.Int("videos", 20000, "catalog size to generate")
		seed    = flag.Uint64("seed", 20110301, "generation seed")
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		key     = flag.String("key", "", "required developer key (empty = open)")
		rate    = flag.Float64("rate", 0, "server-side rate limit, requests/s (0 = unlimited)")
		burst   = flag.Float64("burst", 50, "rate-limiter burst")
		fault   = flag.Float64("fault", 0, "transient 503 probability")
		latency = flag.Duration("latency", 0, "added per-request latency")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "generating %d-video catalog (seed %d)...\n", *videos, *seed)
	cfg := synth.DefaultConfig(*videos)
	cfg.Seed = *seed
	cat, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	graph, err := relgraph.Build(cat, xrand.NewSource(*seed).Fork("relgraph"), relgraph.DefaultConfig())
	if err != nil {
		return err
	}
	scfg := ytapi.DefaultServerConfig()
	scfg.APIKey = *key
	scfg.RatePerSec = *rate
	scfg.Burst = *burst
	scfg.FaultRate = *fault
	scfg.FaultSeed = *seed
	scfg.Latency = *latency
	api, err := ytapi.NewServer(cat, graph, scfg)
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: *addr, Handler: api, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "serving GData API on http://%s (catalog: %v)\n", *addr, cat.Stats())
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "received %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
