// Package viewstags is a full reproduction of "From Views to Tags
// Distribution in Youtube" (Delbruel & Taïani, Middleware'14): a
// measurement pipeline that crawls a (simulated) 2011 YouTube Data API,
// reconstructs per-country view distributions from quantized Map-Chart
// popularity vectors, aggregates them per tag, and uses tag geographic
// profiles as predictive markers for view placement and proactive
// geographic caching — served online by an HTTP placement service
// (internal/server over internal/profilestore, run by cmd/serve).
//
// See DESIGN.md for the system inventory (§4 covers the serving
// layer), EXPERIMENTS.md for the paper-vs-measured record, and
// bench_test.go for the per-figure regeneration harness. The root
// package carries no code — the library lives under internal/, the
// binaries under cmd/, and runnable examples under examples/.
package viewstags
