// Documentation conformance tests: the API reference must cover every
// registered route, and every package must carry a doc comment. These
// run in the ordinary test suite, so CI's doc lint is just `go test`.
package viewstags_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"viewstags/internal/cluster"
	"viewstags/internal/server"
)

// TestAPIDocCoversEveryRoute enumerates both route tables — the
// daemon's (internal/server, public + shard-internal) and the cluster
// gateway's (internal/cluster) — against API.md: each registered path
// must appear in a markdown heading, so a new endpoint cannot ship
// undocumented (and the doc cannot reference the muxes indirectly —
// all derive from server.Routes() / cluster.GatewayRoutes()).
func TestAPIDocCoversEveryRoute(t *testing.T) {
	raw, err := os.ReadFile("API.md")
	if err != nil {
		t.Fatalf("API.md missing: %v", err)
	}
	doc := string(raw)
	var headings []string
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(line, "#") {
			headings = append(headings, line)
		}
	}
	tables := []struct {
		owner  string
		routes []string
	}{
		{"internal/server", server.Routes()},
		{"internal/cluster (gateway)", cluster.GatewayRoutes()},
	}
	for _, table := range tables {
		if len(table.routes) == 0 {
			t.Fatalf("%s registers no routes", table.owner)
		}
		for _, route := range table.routes {
			found := false
			for _, h := range headings {
				if strings.Contains(h, route) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("route %s registered by %s but not documented in an API.md heading", route, table.owner)
			}
		}
	}
}

// TestEveryPackageHasDocComment is the doc-comment lint: every package
// in the module (including cmd mains and examples) must open with a
// package-level doc comment on at least one of its files.
func TestEveryPackageHasDocComment(t *testing.T) {
	pkgDirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			pkgDirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgDirs) < 10 {
		t.Fatalf("only %d package dirs found — walk broken?", len(pkgDirs))
	}
	for dir := range pkgDirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		documented := false
		var files []string
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, name)
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s/%s: %v", dir, name, err)
			}
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				documented = true
				break
			}
		}
		if len(files) > 0 && !documented {
			t.Errorf("package %s has no package doc comment on any of %v", dir, files)
		}
	}
}
