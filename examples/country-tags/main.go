// Country tags: the dual reading of the paper's title — the
// distribution of views over *tags* within a country, plus tag-space
// geometry (which tags are consumed in the same places).
//
//	go run ./examples/country-tags
package main

import (
	"fmt"
	"os"

	"viewstags/internal/alexa"
	"viewstags/internal/pipeline"
	"viewstags/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "country-tags:", err)
		os.Exit(1)
	}
}

func run() error {
	res, err := pipeline.FromSynthetic(10000, 7, alexa.DefaultConfig())
	if err != nil {
		return err
	}
	an := res.Analysis

	// Per-country tag consumption for three differently sized markets.
	t := report.NewTable("country", "distinct tags", "Gini", "entropy (bits)", "top tag", "its share")
	for _, code := range []string{"US", "BR", "IE"} {
		id, _ := res.World.ByCode(code)
		p, err := an.CountryProfile(id, 1)
		if err != nil {
			return err
		}
		top, share := "-", 0.0
		if len(p.TopTags) > 0 {
			top, share = p.TopTags[0].Name, p.TopTags[0].Share
		}
		t.AddRowf("%s\t%d\t%.3f\t%.2f\t%s\t%.2f%%", code, p.DistinctTags, p.Gini, p.Entropy, top, 100*share)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	// Tag-space neighbourhoods: the tags geographically nearest to
	// 'favela' should be other Brazilian/Lusophone tags.
	fmt.Println("\ntags consumed in the same places as 'favela' (JS divergence, min 5 videos):")
	names, dists, err := an.NearestTags("favela", 8, 5)
	if err != nil {
		return err
	}
	for i := range names {
		p, _ := an.TagProfile(names[i])
		fmt.Printf("  %-14s JS=%.3f top=%s\n", names[i], dists[i], res.World.Country(p.TopCountry).Code)
	}

	// And the contrast: neighbours of the global tag 'pop'.
	fmt.Println("\ntags consumed in the same places as 'pop':")
	names, dists, err = an.NearestTags("pop", 5, 5)
	if err != nil {
		return err
	}
	for i := range names {
		fmt.Printf("  %-14s JS=%.3f\n", names[i], dists[i])
	}
	return nil
}
