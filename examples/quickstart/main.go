// Quickstart: the complete paper pipeline in ~40 lines.
//
// It generates a small synthetic YouTube world, filters it the way the
// paper filters its crawl (§2), reconstructs per-country view fields
// from the quantized popularity vectors (§3, Eq. 1–2), aggregates tag
// view fields (Eq. 3), and prints the geographic profile of two tags
// with opposite personalities — 'pop' (global) and 'favela' (Brazilian).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"viewstags/internal/alexa"
	"viewstags/internal/pipeline"
	"viewstags/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// One call: synthetic world → §2 filter → Alexa estimate →
	// reconstruction → per-tag aggregation.
	res, err := pipeline.FromSynthetic(8000, 42, alexa.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %v\n", res.Clean.Report)
	uniqueTags, views := res.Clean.UniqueTags()
	fmt.Printf("kept %d videos, %d unique tags, %d total views\n\n",
		res.Clean.Report.Kept, uniqueTags, views)

	for _, tag := range []string{"pop", "favela"} {
		p, ok := res.Analysis.TagProfile(tag)
		if !ok {
			fmt.Printf("tag %q not sampled at this scale\n", tag)
			continue
		}
		fmt.Printf("tag %q: %d videos, top country %s (%.1f%% of views), spread=%s, JS-to-traffic=%.3f\n",
			p.Name, p.Videos, res.World.Country(p.TopCountry).Code,
			100*p.TopShare, p.Spread, p.JSToTraffic)
		bars, err := report.CountryBars(res.World, p.Views, 5)
		if err != nil {
			return err
		}
		fmt.Println(bars)
	}
	return nil
}
