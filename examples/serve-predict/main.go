// Serve-predict: the online serving layer end to end in one process.
//
// It builds the paper pipeline over a small synthetic catalog, loads
// the tag profiles into the sharded profile store, starts the HTTP
// placement service on an ephemeral loopback port, and then plays the
// client side: predict where a fresh Brazilian-tagged upload will be
// watched, ask where its replicas should go, and fetch Brazil's
// cache-preload advisory — the same session a curl user or cmd/loadgen
// would drive against cmd/serve.
//
//	go run ./examples/serve-predict
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"viewstags/internal/alexa"
	"viewstags/internal/pipeline"
	"viewstags/internal/profilestore"
	"viewstags/internal/server"
	"viewstags/internal/tagviews"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve-predict:", err)
		os.Exit(1)
	}
}

func run() error {
	// Offline: pipeline → tag profiles → serving snapshot.
	res, err := pipeline.FromSynthetic(8000, 42, alexa.DefaultConfig())
	if err != nil {
		return err
	}
	snap, err := profilestore.Build(res.Analysis)
	if err != nil {
		return err
	}
	store, err := profilestore.NewStore(snap)
	if err != nil {
		return err
	}
	fmt.Printf("profile store: %d tags over %d countries\n\n", snap.NumTags(), snap.World().N())

	srv, err := server.New(server.DefaultConfig(), store)
	if err != nil {
		return err
	}
	// Preload advisories need the catalog plus per-video predictions.
	if err := srv.SetCatalog(res.Catalog, snap.PredictCatalog(res.Catalog, tagviews.WeightIDF)); err != nil {
		return err
	}
	// No recovery phase here, so the server is ready as soon as it is
	// wired: flip /readyz before serving.
	srv.SetReady()

	// Online: serve on an ephemeral port, drive it, shut down cleanly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln, 2*time.Second) }()
	base := "http://" + addr
	if err := waitReady(base); err != nil {
		cancel()
		return err
	}

	fmt.Println("POST /v1/predict — where will a ['favela','samba'] upload be watched?")
	if err := show(base+"/v1/predict", server.PredictRequest{Tags: []string{"favela", "samba"}, Top: 3}); err != nil {
		cancel()
		return err
	}

	fmt.Println("\nPOST /v1/place — a US uploader posts a favela video: replicas?")
	if err := show(base+"/v1/place", server.PlaceRequest{Tags: []string{"favela"}, Upload: "US", Replicas: 3}); err != nil {
		cancel()
		return err
	}

	fmt.Println("\nPOST /v1/preload — what should Brazil's edge cache warm up?")
	if err := show(base+"/v1/preload", server.PreloadRequest{Country: "BR", Policy: "tag-push", Slots: 5}); err != nil {
		cancel()
		return err
	}

	cancel() // graceful drain
	return <-done
}

// waitReady polls /readyz until the server admits traffic.
func waitReady(base string) error {
	for i := 0; i < 50; i++ {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("server at %s never became ready", base)
}

// show POSTs one JSON request and pretty-prints the response.
func show(url string, req any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	var v any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return err
	}
	out, err := json.MarshalIndent(v, "  ", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("  %s %s\n", resp.Status, out)
	return nil
}
