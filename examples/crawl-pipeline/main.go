// Crawl pipeline: the paper's §2 data collection, end to end, entirely
// in-process — a synthetic catalog served over a real HTTP GData API,
// snowball-crawled with the concurrent crawler (retries, politeness,
// checkpointing), then filtered and characterized.
//
// This is the example to read to understand how the 2011 study gathered
// its data; everything else in the repo consumes the dataset this
// pipeline produces.
//
//	go run ./examples/crawl-pipeline
package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"viewstags/internal/crawler"
	"viewstags/internal/dataset"
	"viewstags/internal/geo"
	"viewstags/internal/relgraph"
	"viewstags/internal/synth"
	"viewstags/internal/xrand"
	"viewstags/internal/ytapi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crawl-pipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The hidden ground truth: a synthetic YouTube catalog.
	cat, err := synth.Generate(synth.DefaultConfig(3000))
	if err != nil {
		return err
	}
	graph, err := relgraph.Build(cat, xrand.NewSource(1), relgraph.DefaultConfig())
	if err != nil {
		return err
	}

	// 2. The simulated YouTube Data API, with a little realism: 1% of
	// requests fail transiently, so the crawler's retries matter.
	scfg := ytapi.DefaultServerConfig()
	scfg.FaultRate = 0.01
	scfg.FaultSeed = 7
	api, err := ytapi.NewServer(cat, graph, scfg)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(api)
	defer ts.Close()
	fmt.Printf("simulated GData API at %s over %d videos\n", ts.URL, len(cat.Videos))

	// 3. The paper's crawl: top-10 feeds of 25 countries, then snowball.
	ccfg := crawler.DefaultConfig()
	ccfg.SeedRegions = geo.YouTube2011Locales
	ccfg.Workers = 16
	c, err := crawler.New(ytapi.NewClient(ts.URL, "", ts.Client()), ccfg)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := c.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("crawl finished in %v: %v\n", time.Since(start).Round(time.Millisecond), res.Stats)

	// 4. The §2 filter, with its audit trail.
	clean := dataset.Filter(cat.World, res.Records)
	fmt.Printf("filter: %v\n", clean.Report)
	tags, views := clean.UniqueTags()
	fmt.Printf("kept: %d videos, %d unique tags, %d views (%.1f%% dropped — paper: 35.0%%)\n",
		clean.Report.Kept, tags, views, 100*clean.Report.DropRate())

	// 5. Faithfulness check available only in simulation: the crawl
	// covered (nearly) the whole hidden catalog.
	fmt.Printf("coverage: %.1f%% of the hidden catalog\n",
		100*float64(len(res.Records))/float64(len(cat.Videos)))
	return nil
}
