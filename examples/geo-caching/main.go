// Geo caching: the paper's closing conjecture in action — use tag
// profiles to decide where to pre-place videos, and compare against
// reactive and geography-blind policies at several cache sizes.
//
//	go run ./examples/geo-caching
package main

import (
	"fmt"
	"os"

	"viewstags/internal/alexa"
	"viewstags/internal/geocache"
	"viewstags/internal/pipeline"
	"viewstags/internal/report"
	"viewstags/internal/tagviews"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geo-caching:", err)
		os.Exit(1)
	}
}

func run() error {
	res, err := pipeline.FromSynthetic(6000, 99, alexa.DefaultConfig())
	if err != nil {
		return err
	}
	cat := res.Catalog

	// Train the predictor on the filtered crawl, then predict demand for
	// every video from its tags alone.
	pred, err := tagviews.NewPredictor(res.Analysis, tagviews.WeightIDF)
	if err != nil {
		return err
	}
	predictions := make([][]float64, len(cat.Videos))
	predicted := 0
	for i := range cat.Videos {
		names := cat.Videos[i].TagNames(cat.Vocab)
		if len(names) == 0 {
			continue
		}
		if p, ok := pred.Predict(names); ok {
			predictions[i] = p
			predicted++
		}
	}
	fmt.Printf("tag predictor covers %d/%d videos\n\n", predicted, len(cat.Videos))

	cfg := geocache.DefaultConfig()
	cfg.Requests = 120_000
	sim, err := geocache.NewSimulator(cat, cfg)
	if err != nil {
		return err
	}
	if err := sim.SetPredictions(predictions); err != nil {
		return err
	}

	policies := []geocache.PolicyKind{
		geocache.PolicyLRU, geocache.PolicyPopPush,
		geocache.PolicyTagPush, geocache.PolicyOracle,
	}
	t := report.NewTable("slots/country", "policy", "hit ratio", "hit-ratio bar")
	for _, slots := range []int{16, 64, 256} {
		for _, p := range policies {
			r, err := sim.Run(p, slots)
			if err != nil {
				return err
			}
			t.AddRowf("%d\t%s\t%.4f\t%s", slots, r.Policy, r.HitRatio, report.Bar(r.HitRatio, 30))
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nexpected shape: oracle >= tag-push > pop-push, and tag-push beats reactive LRU")
	return nil
}
