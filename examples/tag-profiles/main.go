// Tag profiles: the paper's §3 characterization at dataset scale — which
// tags are local, which are global, and how concentration is
// distributed, including the top-tags table and an entropy histogram.
//
//	go run ./examples/tag-profiles
package main

import (
	"fmt"
	"os"

	"viewstags/internal/alexa"
	"viewstags/internal/dist"
	"viewstags/internal/pipeline"
	"viewstags/internal/report"
	"viewstags/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tag-profiles:", err)
		os.Exit(1)
	}
}

func run() error {
	res, err := pipeline.FromSynthetic(15000, 2011, alexa.DefaultConfig())
	if err != nil {
		return err
	}
	an := res.Analysis

	// The paper's headline observation, quantified over every tag.
	census := an.SpreadCensus()
	fmt.Printf("%d tags: %d local, %d regional, %d global\n\n",
		an.NumTags(), census[dist.SpreadLocal], census[dist.SpreadRegional], census[dist.SpreadGlobal])

	// Top tags by views — the 'pop' end of the spectrum.
	t := report.NewTable("tag", "videos", "top country", "top share", "spread", "JS to traffic")
	for _, p := range an.TopTags(12) {
		t.AddRowf("%s\t%d\t%s\t%.1f%%\t%s\t%.3f",
			p.Name, p.Videos, res.World.Country(p.TopCountry).Code,
			100*p.TopShare, p.Spread, p.JSToTraffic)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	// Entropy histogram over all tags with >= 3 videos: the bimodal
	// local/global structure the paper's Figs. 2–3 exemplify.
	h, err := stats.NewHistogram(0, 6, 12)
	if err != nil {
		return err
	}
	var entropies []float64
	for _, name := range an.TagNames() {
		p, _ := an.TagProfile(name)
		if p.Videos < 3 {
			continue
		}
		h.Add(p.Entropy)
		entropies = append(entropies, p.Entropy)
	}
	fmt.Printf("\nentropy of tag view fields (bits), tags with >= 3 videos (n=%d, median %.2f):\n",
		len(entropies), stats.Median(entropies))
	fmt.Print(h.Render(46))

	// The most Brazilian tags, for flavor: highest BR share among tags
	// with enough videos.
	br := res.World.MustByCode("BR")
	type brTag struct {
		name  string
		share float64
	}
	var best brTag
	for _, name := range an.TagNames() {
		p, _ := an.TagProfile(name)
		if p.Videos < 5 {
			continue
		}
		share := dist.Normalize(p.Views)[br]
		if share > best.share {
			best = brTag{name: name, share: share}
		}
	}
	fmt.Printf("\nmost Brazilian tag (>=5 videos): %q at %.1f%% BR share\n", best.name, 100*best.share)
	return nil
}
