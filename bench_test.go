// Benchmark harness: one bench per paper artifact (T1, F1–F3) and per
// derived experiment (E4–E6), plus the ablations DESIGN.md calls out.
// Run with:
//
//	go test -bench=. -benchmem
//
// The benches report the experiment's headline quantity through
// b.ReportMetric (e.g. drop-rate, JS divergence, hit ratio), so a bench
// run doubles as a reproduction record; EXPERIMENTS.md snapshots them.
package viewstags_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"viewstags/internal/alexa"
	"viewstags/internal/cluster"
	"viewstags/internal/dist"
	"viewstags/internal/geo"
	"viewstags/internal/geocache"
	"viewstags/internal/ingest"
	"viewstags/internal/mapchart"
	"viewstags/internal/pipeline"
	"viewstags/internal/placement"
	"viewstags/internal/profilestore"
	"viewstags/internal/reconstruct"
	"viewstags/internal/report"
	"viewstags/internal/server"
	"viewstags/internal/stats"
	"viewstags/internal/synth"
	"viewstags/internal/tagviews"
)

// benchScale is the shared fixture size: large enough for stable
// statistics, small enough that the full bench suite runs in minutes.
const benchScale = 12000

var (
	benchOnce sync.Once
	benchRes  *pipeline.Result
	benchErr  error
)

func benchFixture(b *testing.B) *pipeline.Result {
	b.Helper()
	benchOnce.Do(func() {
		benchRes, benchErr = pipeline.FromSynthetic(benchScale, 20110301, alexa.DefaultConfig())
	})
	if benchErr != nil {
		b.Fatalf("fixture: %v", benchErr)
	}
	return benchRes
}

// BenchmarkT1DatasetPipeline regenerates the §2 dataset table: generate
// → extract records → filter. Reported metric: drop-rate percent
// (paper: 35.0%).
func BenchmarkT1DatasetPipeline(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		res, err := pipeline.FromSynthetic(4000, uint64(i)+1, alexa.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		drop = res.Clean.Report.DropRate()
	}
	b.ReportMetric(100*drop, "droprate-%")
}

// BenchmarkF1TopVideoMap renders Fig. 1: the most-viewed video's
// popularity map from its quantized pop vector. Reported metric: number
// of countries at the 61 cap (paper: several, e.g. US and SG).
func BenchmarkF1TopVideoMap(b *testing.B) {
	res := benchFixture(b)
	an := res.Analysis
	best, bestViews := -1, int64(-1)
	for i := 0; i < an.N(); i++ {
		if v := an.Record(i).TotalViews; v > bestViews {
			best, bestViews = i, v
		}
	}
	pop, err := an.Record(best).PopVector(res.World)
	if err != nil {
		b.Fatal(err)
	}
	intens := make([]float64, len(pop))
	capped := 0
	for c, x := range pop {
		intens[c] = float64(x)
		if x == mapchart.MaxIntensity {
			capped++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.WorldMap(res.World, intens, "F1"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(capped), "countries-at-cap")
}

// BenchmarkF2GlobalTagMap regenerates Fig. 2: the tag 'pop' against the
// world traffic distribution. Reported metric: JS divergence to traffic
// (paper shape: small).
func BenchmarkF2GlobalTagMap(b *testing.B) {
	res := benchFixture(b)
	var js float64
	for i := 0; i < b.N; i++ {
		p, ok := res.Analysis.TagProfile("pop")
		if !ok {
			b.Fatal("tag 'pop' missing")
		}
		if _, err := report.WorldMap(res.World, p.Views, "F2"); err != nil {
			b.Fatal(err)
		}
		js = p.JSToTraffic
	}
	b.ReportMetric(js, "JS-to-traffic")
}

// BenchmarkF3LocalTagMap regenerates Fig. 3: the tag 'favela',
// concentrated in Brazil. Reported metric: Brazil's share of the tag's
// views (paper shape: dominant).
func BenchmarkF3LocalTagMap(b *testing.B) {
	res := benchFixture(b)
	var brShare float64
	br := res.World.MustByCode("BR")
	for i := 0; i < b.N; i++ {
		p, ok := res.Analysis.TagProfile("favela")
		if !ok {
			b.Fatal("tag 'favela' missing")
		}
		if _, err := report.WorldMap(res.World, p.Views, "F3"); err != nil {
			b.Fatal(err)
		}
		brShare = dist.Normalize(p.Views)[br]
	}
	b.ReportMetric(100*brShare, "BR-share-%")
}

// BenchmarkE4ReconstructionSweep scores Eq. 1–2 reconstruction against
// ground truth across Alexa noise levels. Reported metric: mean JS at
// the highest noise level of the sweep.
func BenchmarkE4ReconstructionSweep(b *testing.B) {
	res := benchFixture(b)
	cat := res.Catalog
	var lastJS float64
	for i := 0; i < b.N; i++ {
		for _, sigma := range []float64{0, 0.1, 0.2, 0.4} {
			pyt, err := alexa.Estimate(cat.World, alexa.Config{NoiseSigma: sigma, Seed: 2011})
			if err != nil {
				b.Fatal(err)
			}
			var sum float64
			n := 0
			for j := range cat.Videos {
				v := &cat.Videos[j]
				if v.PopState != synth.PopStateOK || v.TotalViews < 1000 {
					continue
				}
				rec, err := reconstruct.Views(v.PopVector, pyt, v.TotalViews)
				if err != nil {
					continue
				}
				q, err := reconstruct.Score(rec, v.TrueViews)
				if err != nil {
					b.Fatal(err)
				}
				sum += q.JS
				n++
			}
			lastJS = sum / float64(n)
		}
	}
	b.ReportMetric(lastJS, "meanJS-sigma0.4")
}

// BenchmarkE5TagPrediction evaluates the paper's conjecture: hold-out
// prediction of view fields from tags vs the baselines. Reported
// metrics: the predictor's mean JS and its margin over the best
// baseline.
func BenchmarkE5TagPrediction(b *testing.B) {
	res := benchFixture(b)
	var r *tagviews.EvalResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = tagviews.Evaluate(res.World, res.Clean.Records, res.Clean.Pop, res.Pyt, tagviews.DefaultEvalConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.TagJS, "JS-tags")
	best := r.PriorJS
	if r.UploadJS < best {
		best = r.UploadJS
	}
	b.ReportMetric(best-r.TagJS, "JS-margin-vs-best-baseline")
	b.ReportMetric(r.TagTop1, "top1-accuracy")
}

// benchPredictions computes tag predictions for E6 once.
var (
	predOnce sync.Once
	predVals [][]float64
	predErr  error
)

func benchPredictions(b *testing.B) [][]float64 {
	b.Helper()
	res := benchFixture(b)
	predOnce.Do(func() {
		pred, err := tagviews.NewPredictor(res.Analysis, tagviews.WeightIDF)
		if err != nil {
			predErr = err
			return
		}
		cat := res.Catalog
		predVals = make([][]float64, len(cat.Videos))
		for i := range cat.Videos {
			names := cat.Videos[i].TagNames(cat.Vocab)
			if len(names) == 0 {
				continue
			}
			if p, ok := pred.Predict(names); ok {
				predVals[i] = p
			}
		}
	})
	if predErr != nil {
		b.Fatal(predErr)
	}
	return predVals
}

// BenchmarkE6GeoCache replays the request stream against each policy at
// 64 slots/country. Reported metric per sub-bench: hit ratio.
func BenchmarkE6GeoCache(b *testing.B) {
	res := benchFixture(b)
	preds := benchPredictions(b)
	cfg := geocache.DefaultConfig()
	cfg.Requests = 100_000
	sim, err := geocache.NewSimulator(res.Catalog, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.SetPredictions(preds); err != nil {
		b.Fatal(err)
	}
	for _, p := range []geocache.PolicyKind{
		geocache.PolicyLRU, geocache.PolicyLFU, geocache.PolicyPopPush,
		geocache.PolicyTagPush, geocache.PolicyHybrid, geocache.PolicyOracle,
	} {
		b.Run(p.String(), func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(p, 64)
				if err != nil {
					b.Fatal(err)
				}
				hit = r.HitRatio
			}
			b.ReportMetric(hit, "hit-ratio")
		})
	}
}

// BenchmarkAblationWeighting compares the predictor's three tag
// weighting schemes (DESIGN.md §5).
func BenchmarkAblationWeighting(b *testing.B) {
	res := benchFixture(b)
	for _, w := range []tagviews.Weighting{tagviews.WeightUniform, tagviews.WeightByViews, tagviews.WeightIDF} {
		b.Run(w.String(), func(b *testing.B) {
			cfg := tagviews.DefaultEvalConfig()
			cfg.Weighting = w
			var r *tagviews.EvalResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = tagviews.Evaluate(res.World, res.Clean.Records, res.Clean.Pop, res.Pyt, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.TagJS, "JS-tags")
		})
	}
}

// BenchmarkAblationPushBudget sweeps the tag-push policy's per-country
// capacity (DESIGN.md §5).
func BenchmarkAblationPushBudget(b *testing.B) {
	res := benchFixture(b)
	preds := benchPredictions(b)
	cfg := geocache.DefaultConfig()
	cfg.Requests = 60_000
	sim, err := geocache.NewSimulator(res.Catalog, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.SetPredictions(preds); err != nil {
		b.Fatal(err)
	}
	for _, slots := range []int{16, 64, 256} {
		b.Run(benchName("slots", slots), func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(geocache.PolicyTagPush, slots)
				if err != nil {
					b.Fatal(err)
				}
				hit = r.HitRatio
			}
			b.ReportMetric(hit, "hit-ratio")
		})
	}
}

// BenchmarkAblationQuantization compares reconstruction loss under the
// chart API's two encodings: simple (62 levels, what YouTube used) vs
// extended (4096 levels) — isolating pure quantization error
// (DESIGN.md §5).
func BenchmarkAblationQuantization(b *testing.B) {
	res := benchFixture(b)
	cat := res.Catalog
	pyt, err := alexa.Estimate(cat.World, alexa.Config{NoiseSigma: 0, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, levels := range []int{mapchart.MaxIntensity, mapchart.MaxExtended} {
		b.Run(benchName("levels", levels), func(b *testing.B) {
			var meanJS float64
			for i := 0; i < b.N; i++ {
				var sum float64
				n := 0
				views := make([]float64, cat.World.N())
				for j := range cat.Videos {
					v := &cat.Videos[j]
					if v.PopState != synth.PopStateOK || v.TotalViews < 1000 {
						continue
					}
					for c, x := range v.TrueViews {
						views[c] = float64(x)
					}
					intens, err := mapchart.Intensity(views, cat.World.Traffic())
					if err != nil {
						b.Fatal(err)
					}
					pop := mapchart.QuantizeTo(intens, levels)
					rec, err := reconstruct.Views(pop, pyt, v.TotalViews)
					if err != nil {
						continue
					}
					q, err := reconstruct.Score(rec, v.TrueViews)
					if err != nil {
						b.Fatal(err)
					}
					sum += q.JS
					n++
				}
				meanJS = sum / float64(n)
			}
			b.ReportMetric(meanJS, "meanJS")
		})
	}
}

// BenchmarkTagAggregation measures the Eq. 3 aggregation core in
// isolation (records/sec of the Build step).
func BenchmarkTagAggregation(b *testing.B) {
	res := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tagviews.Build(res.World, res.Clean.Records, res.Clean.Pop, res.Pyt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Clean.Records)), "records/op")
}

// BenchmarkReconstructionThroughput measures single-video Eq. 1–2
// inversion cost.
func BenchmarkReconstructionThroughput(b *testing.B) {
	res := benchFixture(b)
	pop := res.Clean.Pop
	recs := res.Clean.Records
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(recs)
		if _, err := reconstruct.Views(pop[j], res.Pyt, recs[j].TotalViews); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapChartRoundTrip measures chart URL encode+parse (the
// crawler's per-video scrape cost).
func BenchmarkMapChartRoundTrip(b *testing.B) {
	codes := []string{"US", "GB", "FR", "DE", "BR", "JP", "KR", "IN", "RU", "MX"}
	vals := []int{61, 40, 35, 30, 25, 20, 15, 10, 5, 1}
	chart := &mapchart.Chart{Codes: codes, Intensities: vals}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := chart.BuildURL()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mapchart.ParseURL(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStatsSubstrate exercises the Gini/entropy path over the tag
// corpus (used by the characterization reports).
func BenchmarkStatsSubstrate(b *testing.B) {
	res := benchFixture(b)
	totals := make([]float64, 0, res.Analysis.NumTags())
	for _, p := range res.Analysis.TopTags(res.Analysis.NumTags()) {
		totals = append(totals, p.TotalViews)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stats.Gini(totals)
		_ = stats.Entropy(totals)
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + strconv.Itoa(n)
}

// BenchmarkAblationTopicDrift sweeps the generator's topic-drift rate —
// the fraction of videos whose topic anchors away from the uploader's
// country. Drift is what makes tags a strictly better marker than
// uploader location; the reported metric is the E5 JS margin of the tag
// predictor over the upload-country baseline at each drift level.
func BenchmarkAblationTopicDrift(b *testing.B) {
	for _, drift := range []float64{0, 0.15, 0.30, 0.60} {
		b.Run("drift-"+strconv.FormatFloat(drift, 'f', 2, 64), func(b *testing.B) {
			var margin float64
			for i := 0; i < b.N; i++ {
				cfg := synth.DefaultConfig(5000)
				cfg.TopicDrift = drift
				res, err := pipeline.FromSyntheticConfig(cfg, alexa.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				r, err := tagviews.Evaluate(res.World, res.Clean.Records, res.Clean.Pop, res.Pyt, tagviews.DefaultEvalConfig())
				if err != nil {
					b.Fatal(err)
				}
				margin = r.UploadJS - r.TagJS
			}
			b.ReportMetric(margin, "JS-margin-over-upload")
		})
	}
}

// BenchmarkAblationTemporalLocality sweeps request-stream burstiness:
// as temporal locality grows, reactive LRU closes the gap to tag-push
// (the EXPERIMENTS.md validity note, quantified). Reported metric:
// tag-push hit ratio minus LRU hit ratio.
func BenchmarkAblationTemporalLocality(b *testing.B) {
	res := benchFixture(b)
	preds := benchPredictions(b)
	for _, locality := range []float64{0, 0.25, 0.5} {
		b.Run("locality-"+strconv.FormatFloat(locality, 'f', 2, 64), func(b *testing.B) {
			var gap float64
			for i := 0; i < b.N; i++ {
				cfg := geocache.DefaultConfig()
				cfg.Requests = 60_000
				cfg.TemporalLocality = locality
				sim, err := geocache.NewSimulator(res.Catalog, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.SetPredictions(preds); err != nil {
					b.Fatal(err)
				}
				tp, err := sim.Run(geocache.PolicyTagPush, 64)
				if err != nil {
					b.Fatal(err)
				}
				lru, err := sim.Run(geocache.PolicyLRU, 64)
				if err != nil {
					b.Fatal(err)
				}
				gap = tp.HitRatio - lru.HitRatio
			}
			b.ReportMetric(gap, "tagpush-minus-lru")
		})
	}
}

// BenchmarkE7Placement evaluates replica placement (the storage-layer
// extension the paper's intro motivates): mean viewer-to-replica
// distance per strategy at 3 replicas/video.
func BenchmarkE7Placement(b *testing.B) {
	res := benchFixture(b)
	preds := benchPredictions(b)
	ev, err := placement.NewEvaluator(res.Catalog, placement.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := ev.SetPredictions(preds); err != nil {
		b.Fatal(err)
	}
	for _, s := range []placement.Strategy{
		placement.StrategyHome, placement.StrategyPopular,
		placement.StrategyPredicted, placement.StrategyOracle,
	} {
		b.Run(s.String(), func(b *testing.B) {
			var r placement.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = ev.Evaluate(s)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.MeanKm, "mean-km")
			b.ReportMetric(r.LocalFraction, "local-fraction")
		})
	}
}

// BenchmarkAggregationParallel measures the sharded Eq. 3 builder at
// several worker counts (scalability of the core aggregation).
func BenchmarkAggregationParallel(b *testing.B) {
	res := benchFixture(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tagviews.BuildParallel(res.World, res.Clean.Records, res.Clean.Pop, res.Pyt, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// serveFixture builds the HTTP serving stack (profile store + fully
// middleware-wrapped handler) over the shared bench fixture once.
var (
	serveOnce sync.Once
	serveSrv  *server.Server
	serveErr  error
)

func serveFixture(b *testing.B) *server.Server {
	b.Helper()
	res := benchFixture(b)
	serveOnce.Do(func() {
		snap, err := profilestore.Build(res.Analysis)
		if err != nil {
			serveErr = err
			return
		}
		store, err := profilestore.NewStore(snap)
		if err != nil {
			serveErr = err
			return
		}
		serveSrv, serveErr = server.New(server.DefaultConfig(), store)
	})
	if serveErr != nil {
		b.Fatal(serveErr)
	}
	return serveSrv
}

// BenchmarkServePredict measures /v1/predict through the full handler
// stack (middleware, JSON decode, prediction, JSON encode): one video
// per request vs a 32-video batch. The reported predictions/sec metric
// is the acceptance quantity — batching amortizes the per-request HTTP
// and JSON overhead, so batch-32 must beat single.
func BenchmarkServePredict(b *testing.B) {
	srv := serveFixture(b)
	res := benchFixture(b)
	cat := res.Catalog
	var tagSets [][]string
	for i := range cat.Videos {
		if names := cat.Videos[i].TagNames(cat.Vocab); len(names) > 0 {
			tagSets = append(tagSets, names)
		}
	}
	makeBody := func(batch, seq int) []byte {
		req := server.PredictRequest{Weighting: "idf", Top: 3}
		if batch == 1 {
			req.Tags = tagSets[seq%len(tagSets)]
		} else {
			req.Batch = make([]server.PredictItem, batch)
			for j := range req.Batch {
				req.Batch[j] = server.PredictItem{Tags: tagSets[(seq*batch+j)%len(tagSets)]}
			}
		}
		body, err := json.Marshal(&req)
		if err != nil {
			b.Fatal(err)
		}
		return body
	}
	for _, batch := range []int{1, 32} {
		name := "single"
		if batch > 1 {
			name = benchName("batch", batch)
		}
		b.Run(name, func(b *testing.B) {
			h := srv.Handler()
			// Pre-marshal a rotating set of request bodies so only the
			// server side (ServeHTTP) is timed, not the client encode.
			bodies := make([][]byte, 256)
			for i := range bodies {
				bodies[i] = makeBody(batch, i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(bodies[i%len(bodies)]))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
			preds := float64(b.N * batch)
			b.ReportMetric(preds/b.Elapsed().Seconds(), "preds/sec")
		})
	}
}

// BenchmarkIngestFold measures one full epoch of the streaming write
// path — accumulate a batch of view events, drain the sharded deltas,
// Rebuild the snapshot copy-on-write, swap it in — at two touch widths:
// a hot head of 100 tags and the whole vocabulary. The copy-on-write
// contract says cost scales with touched tags plus O(tags) bookkeeping,
// so the two runs bound a production fold's latency from both sides.
func BenchmarkIngestFold(b *testing.B) {
	res := benchFixture(b)
	base, err := profilestore.Build(res.Analysis)
	if err != nil {
		b.Fatal(err)
	}
	names := res.Analysis.TagNames()
	nC := res.World.N()
	for _, touch := range []int{100, len(names)} {
		b.Run(benchName("touch", touch), func(b *testing.B) {
			store, err := profilestore.NewStore(base)
			if err != nil {
				b.Fatal(err)
			}
			acc, err := ingest.NewAccumulator(store, 1<<30)
			if err != nil {
				b.Fatal(err)
			}
			events := make([]ingest.Event, touch)
			for i := range events {
				events[i] = ingest.Event{
					Video:   "bench-" + strconv.Itoa(i),
					Tags:    []string{names[i%len(names)]},
					Country: geo.CountryID(i % nC),
					Views:   1,
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := acc.Add(events); err != nil {
					b.Fatal(err)
				}
				deltas, n, _, _ := acc.Drain()
				next, err := profilestore.Rebuild(store.Load(), deltas, n)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := store.Swap(next); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*float64(touch)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkClusterGatewayPredict measures /v1/predict through the
// cluster edge: a gateway scatter-gathering three in-process shard
// daemons over real loopback HTTP, alongside BenchmarkServePredict's
// single-node numbers (same request shapes, same preds/sec metric).
// The parallel driver reflects the tier's design point — concurrent
// clients amortize the per-request fan-out latency, so aggregate
// throughput tracks shard capacity rather than one request's 3-way
// round trip. CI uploads both benches as the gateway-vs-single-node
// throughput artifact.
func BenchmarkClusterGatewayPredict(b *testing.B) {
	res := benchFixture(b)
	const shards = 3
	ring, err := cluster.NewRing(shards, 0)
	if err != nil {
		b.Fatal(err)
	}
	targets := make([]string, shards)
	for i := 0; i < shards; i++ {
		i := i
		snap, err := profilestore.BuildOwned(res.Analysis, func(name string) bool { return ring.Owner(name) == i })
		if err != nil {
			b.Fatal(err)
		}
		store, err := profilestore.NewStore(snap)
		if err != nil {
			b.Fatal(err)
		}
		cfg := server.DefaultConfig()
		cfg.ShardIndex = i
		cfg.ShardCount = shards
		cfg.RingSignature = ring.Signature()
		srv, err := server.New(cfg, store)
		if err != nil {
			b.Fatal(err)
		}
		// No recovery phase in a bench shard: mark ready immediately or
		// Sync (which refuses unready shards since the durable tier)
		// never succeeds.
		srv.SetReady()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		targets[i] = ts.URL
	}
	cat := res.Catalog
	var tagSets [][]string
	for i := range cat.Videos {
		if names := cat.Videos[i].TagNames(cat.Vocab); len(names) > 0 {
			tagSets = append(tagSets, names)
		}
	}
	makeBody := func(batch, seq int) []byte {
		req := server.PredictRequest{Weighting: "idf", Top: 3}
		if batch == 1 {
			req.Tags = tagSets[seq%len(tagSets)]
		} else {
			req.Batch = make([]server.PredictItem, batch)
			for j := range req.Batch {
				req.Batch[j] = server.PredictItem{Tags: tagSets[(seq*batch+j)%len(tagSets)]}
			}
		}
		body, err := json.Marshal(&req)
		if err != nil {
			b.Fatal(err)
		}
		return body
	}
	// One gateway per internal-wire configuration over the same shards:
	// the json/binary pairs isolate the codec's contribution, and the
	// coalesce variant adds the micro-batching window — singles are
	// where it differentiates most (each otherwise pays its own
	// per-shard round trip), but batches splice into the same shared
	// fan-outs, so both shapes run.
	variants := []struct {
		name   string
		wire   cluster.WireKind
		window time.Duration
		shapes []int
	}{
		{"wire-json", cluster.WireJSON, 0, []int{1, 32}},
		{"wire-binary", cluster.WireBinary, 0, []int{1, 32}},
		{"wire-binary-coalesce", cluster.WireBinary, 500 * time.Microsecond, []int{1, 4, 32}},
	}
	for _, v := range variants {
		cfg := cluster.DefaultGatewayConfig()
		cfg.Wire = v.wire
		cfg.CoalesceWindow = v.window
		g, err := cluster.NewGateway(cfg, targets)
		if err != nil {
			b.Fatal(err)
		}
		if err := g.Sync(context.Background()); err != nil {
			b.Fatal(err)
		}
		for _, batch := range v.shapes {
			name := v.name + "/single"
			if batch > 1 {
				name = v.name + "/" + benchName("batch", batch)
			}
			b.Run(name, func(b *testing.B) {
				h := g.Handler()
				bodies := make([][]byte, 256)
				for i := range bodies {
					bodies[i] = makeBody(batch, i)
				}
				var seq atomic.Int64
				// 32 closed-loop drivers regardless of GOMAXPROCS: the
				// tier's design point is many concurrent clients (the
				// coalescer batches across them), and on the 1-vCPU CI
				// runner RunParallel would otherwise drive one worker.
				b.SetParallelism(max(1, 32/runtime.GOMAXPROCS(0)))
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := int(seq.Add(1))
						req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(bodies[i%len(bodies)]))
						rec := httptest.NewRecorder()
						h.ServeHTTP(rec, req)
						if rec.Code != http.StatusOK {
							b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
						}
					}
				})
				preds := float64(b.N * batch)
				b.ReportMetric(preds/b.Elapsed().Seconds(), "preds/sec")
			})
		}
	}
}

// BenchmarkInternalCodec measures the gateway↔shard codec in isolation
// at the fan-out's realistic shape: a 32-item batch of catalog tag
// lists and world-sized float64 reply vectors. The json twins encode
// and decode the same payloads through the InternalPredict wire
// structs — the before/after pair behind the binary wire's throughput
// claim in EXPERIMENTS.md.
func BenchmarkInternalCodec(b *testing.B) {
	res := benchFixture(b)
	nC := res.World.N()
	cat := res.Catalog
	var items [][]string
	for i := range cat.Videos {
		if names := cat.Videos[i].TagNames(cat.Vocab); len(names) > 0 {
			items = append(items, names)
		}
		if len(items) == 32 {
			break
		}
	}
	wsums := make([]float64, len(items))
	vec := make([]float64, nC)
	for c := range vec {
		vec[c] = 1 / float64(c+1)
	}
	for i := range wsums {
		wsums[i] = float64(i%7) + 0.5
	}

	b.Run("request-encode", func(b *testing.B) {
		buf := server.AppendPredictRequest(nil, items, tagviews.WeightIDF, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = server.AppendPredictRequest(buf[:0], items, tagviews.WeightIDF, false)
		}
		b.SetBytes(int64(len(buf)))
	})
	b.Run("request-decode", func(b *testing.B) {
		frame := server.AppendPredictRequest(nil, items, tagviews.WeightIDF, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := server.DecodePredictRequest(frame); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(frame)))
	})

	encodeResp := func(enc *server.PredictWireEncoder) []byte {
		enc.Begin(tagviews.WeightIDF, 10000, 3, nC, len(items), false)
		for i := range items {
			enc.Item(wsums[i], vec)
		}
		return enc.Finish()
	}
	b.Run("response-encode", func(b *testing.B) {
		var enc server.PredictWireEncoder
		frame := encodeResp(&enc)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			encodeResp(&enc)
		}
		b.SetBytes(int64(len(frame)))
	})
	b.Run("response-decode", func(b *testing.B) {
		var enc server.PredictWireEncoder
		frame := encodeResp(&enc)
		var pp server.PredictPartials
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := server.DecodePredictResponse(frame, &pp, 64, 1<<12); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(frame)))
	})

	// The JSON twins: what each response direction cost before the
	// binary wire (the request side is small either way; the response's
	// world-sized float64 vectors are where JSON text rendering burns).
	jsonResp := server.InternalPredictResponse{Partials: make([]server.PartialMixture, len(items))}
	for i := range jsonResp.Partials {
		jsonResp.Partials[i] = server.PartialMixture{WeightSum: wsums[i], Sum: vec}
	}
	jsonFrame, err := json.Marshal(&jsonResp)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("response-encode-json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(&jsonResp); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(jsonFrame)))
	})
	b.Run("response-decode-json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var out server.InternalPredictResponse
			if err := json.Unmarshal(jsonFrame, &out); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(jsonFrame)))
	})
}
