// Allocation-budget gates for the serving hot path. The perf work that
// made the fan-out tier fast is mostly *absence* — of JSON number text,
// of per-item vector copies, of per-request buffer churn — and absence
// regresses silently: one innocent-looking `append([]float64(nil),...)`
// in a handler and the GC is back on the profile. These tests pin the
// budgets with testing.AllocsPerRun so CI fails the moment the hot path
// starts allocating again (see ci.yml's allocation-regression step).
package viewstags_test

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"viewstags/internal/obs"
	"viewstags/internal/profilestore"
	"viewstags/internal/server"
	"viewstags/internal/tagviews"
)

// nullResponseWriter is the cheapest possible ResponseWriter: budget
// tests must count the handler's allocations, not the recorder's.
type nullResponseWriter struct {
	h http.Header
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

func TestAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are pinned without the race detector's instrumentation")
	}
	res := testFixture(t)
	snap, err := profilestore.Build(res.Analysis)
	if err != nil {
		t.Fatal(err)
	}
	tags := res.Analysis.TagNames()[:12]
	buf := make([]float64, res.World.N())

	// The prediction core: the contract the whole serving tier is built
	// on. Zero, not "a few": PredictInto runs thousands of times per
	// second per core and must never touch the heap.
	t.Run("PredictInto", func(t *testing.T) {
		allocs := testing.AllocsPerRun(200, func() {
			snap.PredictInto(buf, tags, tagviews.WeightIDF)
		})
		if allocs != 0 {
			t.Fatalf("PredictInto allocates %.1f/op, want 0", allocs)
		}
	})
	t.Run("PredictPartialInto", func(t *testing.T) {
		allocs := testing.AllocsPerRun(200, func() {
			snap.PredictPartialInto(buf, tags, tagviews.WeightIDF)
		})
		if allocs != 0 {
			t.Fatalf("PredictPartialInto allocates %.1f/op, want 0", allocs)
		}
	})

	// The binary codec at steady state (recycled buffers): encode and
	// decode must both be allocation-free, or the wire win leaks back
	// out through the GC.
	items := [][]string{tags[:4], tags[4:9], tags[9:12]}
	t.Run("WireEncode", func(t *testing.T) {
		enc := server.GetPredictWireEncoder()
		defer server.PutPredictWireEncoder(enc)
		reqBuf := server.AppendPredictRequest(nil, items, tagviews.WeightIDF, false)
		allocs := testing.AllocsPerRun(200, func() {
			reqBuf = server.AppendPredictRequest(reqBuf[:0], items, tagviews.WeightIDF, false)
			enc.Begin(tagviews.WeightIDF, snap.Records(), 7, len(buf), len(items), false)
			for range items {
				enc.Item(1.5, buf)
			}
			enc.Finish()
		})
		if allocs != 0 {
			t.Fatalf("steady-state wire encode allocates %.1f/op, want 0", allocs)
		}
	})
	t.Run("WireDecodeResponse", func(t *testing.T) {
		enc := server.GetPredictWireEncoder()
		defer server.PutPredictWireEncoder(enc)
		enc.Begin(tagviews.WeightIDF, snap.Records(), 7, len(buf), len(items), false)
		for range items {
			enc.Item(1.5, buf)
		}
		frame := enc.Finish()
		var pp server.PredictPartials
		if err := server.DecodePredictResponse(frame, &pp, 64, 1<<12); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if err := server.DecodePredictResponse(frame, &pp, 64, 1<<12); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("steady-state wire decode allocates %.1f/op, want 0", allocs)
		}
	})

	// The full handler stacks. These cannot be zero — JSON request
	// decode and client-facing response encode are real — but they must
	// stay bounded: the budgets have headroom over the measured counts,
	// and a re-introduced per-item vector copy or unpooled buffer blows
	// straight through them.
	store, err := profilestore.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.DefaultConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	runHandler := func(t *testing.T, path, contentType string, body []byte, budget float64) {
		t.Helper()
		w := &nullResponseWriter{h: make(http.Header)}
		do := func() {
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
			req.Header.Set("Content-Type", contentType)
			h.ServeHTTP(w, req)
		}
		do() // warm pools and lazy internals
		allocs := testing.AllocsPerRun(100, do)
		if allocs > budget {
			t.Fatalf("%s allocates %.1f/op, budget %.0f", path, allocs, budget)
		}
		t.Logf("%s: %.1f allocs/op (budget %.0f)", path, allocs, budget)
	}

	t.Run("InternalPredictBinary", func(t *testing.T) {
		body := server.AppendPredictRequest(nil, items, tagviews.WeightIDF, false)
		// Measured 38 (request plumbing + per-tag strings + trace echo;
		// span recording into the pooled trace adds zero — see the
		// SpanRecord gate); the budget trips if per-item response copies
		// come back.
		runHandler(t, "/internal/predict", server.WireContentType, body, 64)
	})
	t.Run("PredictSingleJSON", func(t *testing.T) {
		body := []byte(`{"tags":["` + tags[0] + `","` + tags[1] + `","` + tags[2] + `"],"weighting":"idf","top":3}`)
		// Measured 42 (JSON decode/encode dominates); rendering
		// world-sized response vectors would add dozens more.
		runHandler(t, "/v1/predict", "application/json", body, 72)
	})

	// The observe path itself: recording a latency into a route
	// histogram is a few atomic adds and must never allocate — it runs
	// inside every single request.
	t.Run("HistogramObserve", func(t *testing.T) {
		m := server.NewMetrics()
		var d time.Duration
		allocs := testing.AllocsPerRun(200, func() {
			m.Predict.Latency.Observe(d)
			d += 37 * time.Microsecond
		})
		if allocs != 0 {
			t.Fatalf("histogram Observe allocates %.1f/op, want 0", allocs)
		}
	})

	// Span recording: stage instrumentation runs inside every traced
	// request — decode, fanout legs, merge, encode — so Add must write
	// into the pooled trace's fixed array and never touch the heap.
	t.Run("SpanRecord", func(t *testing.T) {
		tr := obs.GetTrace(obs.NewRequestID(), "/bench", time.Now())
		defer obs.PutTrace(tr)
		start := time.Now()
		allocs := testing.AllocsPerRun(200, func() {
			tr.Add("bench", obs.NoShard, start, time.Microsecond, "")
		})
		if allocs != 0 {
			t.Fatalf("span record allocates %.1f/op, want 0", allocs)
		}
	})

	// The middleware stack around a no-op handler isolates the
	// per-request observability overhead (trace id echo, status
	// capture, histogram observe) from handler work. It cannot be zero
	// — the status-capturing writer and the response trace header are
	// real per-request state — but it must stay small and flat.
	t.Run("MetricsMiddleware", func(t *testing.T) {
		mw := server.NewMiddleware(16, server.NewMetrics(), log.New(io.Discard, "", 0), false)
		noop := mw.Wrap(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
		w := &nullResponseWriter{h: make(http.Header)}
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", nil)
		req.Header.Set("X-Request-Id", "alloc-budget-test")
		do := func() {
			for k := range w.h {
				delete(w.h, k)
			}
			noop.ServeHTTP(w, req)
		}
		do()
		allocs := testing.AllocsPerRun(100, do)
		// Measured ~4 (status writer, response header value, limiter
		// bookkeeping); the budget trips if the observe path or the
		// trace middleware starts allocating per request.
		if allocs > 8 {
			t.Fatalf("middleware stack allocates %.1f/op, budget 8", allocs)
		}
		t.Logf("middleware stack: %.1f allocs/op (budget 8)", allocs)
	})
}
