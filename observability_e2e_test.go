// Observability integration tests at repository scope: a real 3-shard
// tier behind a real gateway, asserting the /metrics expositions are
// conformant Prometheus text while traffic flows, that /v1/stats'
// histogram-derived quantiles are coherent, and that one X-Request-Id
// follows a request through the gateway log, every shard's log and the
// response the client holds — including through a coalesced
// micro-batch, where the shard-bound header carries every member's id.
package viewstags_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"viewstags/internal/cluster"
	"viewstags/internal/ingest"
	"viewstags/internal/obs"
	"viewstags/internal/profilestore"
	"viewstags/internal/server"
	"viewstags/internal/tagviews"
)

// logBuf is a goroutine-safe log sink the trace assertions grep.
type logBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// startLoggedNode is startClusterNode with access logging captured
// into a buffer, for the trace-propagation assertions.
func startLoggedNode(t *testing.T, ring *cluster.Ring, index, count int, foldEvery time.Duration, buf *logBuf) *clusterNode {
	t.Helper()
	res := testFixture(t)
	var owns func(string) bool
	if count > 1 {
		owns = func(name string) bool { return ring.Owner(name) == index }
	}
	snap, err := profilestore.BuildOwned(res.Analysis, owns)
	if err != nil {
		t.Fatal(err)
	}
	store, err := profilestore.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.DefaultConfig()
	cfg.ShardIndex = index
	cfg.ShardCount = count
	cfg.RingSignature = ring.Signature()
	cfg.Logger = log.New(buf, "", 0)
	cfg.LogRequests = true
	srv, err := server.New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ingest.NewAccumulator(store, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableIngest(acc, foldEvery); err != nil {
		t.Fatal(err)
	}
	srv.SetReady()
	comp, err := ingest.NewCompactor(acc, foldEvery, func(d []profilestore.TagDelta, n int) error {
		return srv.ApplyDeltas(d, n, tagviews.WeightIDF)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); comp.Run(ctx) }()
	ts := httptest.NewServer(srv.Handler())
	return &clusterNode{srv: srv, acc: acc, ts: ts, stop: func() {
		cancel()
		<-done
		ts.Close()
	}}
}

// scrape fetches a /metrics exposition, checks status and content
// type, and runs the full text-format conformance validator over it.
func scrape(t *testing.T, client *http.Client, base string) string {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET %s/metrics: %v", base, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/metrics: status %d: %s", base, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Fatalf("GET %s/metrics: Content-Type %q, want %q", base, ct, obs.TextContentType)
	}
	if err := obs.Validate(body); err != nil {
		t.Fatalf("GET %s/metrics: malformed exposition: %v\n%s", base, err, body)
	}
	return string(body)
}

// TestMetricsEndToEnd drives a 3-shard tier under mixed read/write
// load, scrapes the gateway and one shard mid-run, validates both
// expositions, and checks the stats quantiles cohere.
func TestMetricsEndToEnd(t *testing.T) {
	const shards = 3
	foldEvery := 15 * time.Millisecond
	ring, err := cluster.NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*clusterNode, shards)
	targets := make([]string, shards)
	for i := range nodes {
		nodes[i] = startClusterNode(t, ring, i, shards, foldEvery)
		targets[i] = nodes[i].ts.URL
		defer nodes[i].stop()
	}
	gcfg := cluster.DefaultGatewayConfig()
	gcfg.HealthInterval = 20 * time.Millisecond
	gcfg.CoalesceWindow = 250 * time.Microsecond
	g, err := cluster.NewGateway(gcfg, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	client := gw.Client()

	// Mixed traffic: predicts (single + batch, so the coalescer runs)
	// and ingest batches (so folds happen and the fold histogram
	// fills), scraping both tiers mid-run.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var pr server.PredictResponse
				if code := postJSON(t, client, gw.URL+"/v1/predict",
					server.PredictRequest{Tags: []string{"pop", "music"}, Top: 3}, &pr); code != http.StatusOK {
					t.Errorf("predict: status %d", code)
					return
				}
				if i%5 == 0 {
					events := []server.IngestEvent{{
						Video: fmt.Sprintf("obs-%d-%d", w, i), Tags: []string{"pop"},
						Country: "US", Views: 5, Upload: true,
					}}
					if code := postJSON(t, client, gw.URL+"/v1/ingest",
						server.IngestRequest{Events: events}, nil); code != http.StatusOK {
						t.Errorf("ingest: status %d", code)
						return
					}
				}
			}
		}(w)
	}
	// Scrape while the load is still flowing: the exposition must be
	// parseable mid-write, not just at rest.
	gwText := scrape(t, client, gw.URL)
	shardText := scrape(t, client, targets[0])
	wg.Wait()

	// Folds have run by now (the ingest acks prove events got in);
	// scrape again at rest for the content assertions so counts are
	// settled.
	time.Sleep(4 * foldEvery)
	gwText = scrape(t, client, gw.URL)
	shardText = scrape(t, client, targets[0])
	for _, want := range []string{
		`viewstags_requests_total{route="predict"}`,
		"viewstags_request_duration_seconds_bucket",
		`viewstags_shard_up{shard="0"} 1`,
		`viewstags_shard_up{shard="2"} 1`,
		"viewstags_cluster_min_epoch",
		"viewstags_coalesce_batches_total",
		"go_goroutines",
	} {
		if !strings.Contains(gwText, want) {
			t.Errorf("gateway exposition missing %q", want)
		}
	}
	for _, want := range []string{
		`viewstags_requests_total{route="internal"}`,
		"viewstags_request_duration_seconds_bucket",
		"viewstags_ingest_fold_duration_seconds_bucket",
		"viewstags_ingest_events_total",
		"go_heap_alloc_bytes",
	} {
		if !strings.Contains(shardText, want) {
			t.Errorf("shard exposition missing %q", want)
		}
	}

	// /v1/stats quantiles come from the same histograms: they must be
	// ordered and the mean must be inside the observed range.
	var stats struct {
		Predict server.RouteSnapshot `json:"predict"`
	}
	resp, err := client.Get(gw.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	p := stats.Predict
	if p.Requests == 0 {
		t.Fatal("gateway /v1/stats reports zero predict requests after load")
	}
	if p.MeanMs <= 0 || p.P50Ms <= 0 {
		t.Errorf("predict latency stats not populated: %+v", p)
	}
	if p.P50Ms > p.P95Ms || p.P95Ms > p.P99Ms {
		t.Errorf("predict quantiles out of order: p50=%v p95=%v p99=%v", p.P50Ms, p.P95Ms, p.P99Ms)
	}
}

// TestTraceEndToEnd asserts the request-id contract: an id supplied by
// the client comes back on the response, shows up in the gateway's
// access log, and reaches every shard's access log over the internal
// fan-out — and when two requests share a coalesced micro-batch, the
// one internal call carries both ids.
func TestTraceEndToEnd(t *testing.T) {
	const shards = 2
	foldEvery := 50 * time.Millisecond
	ring, err := cluster.NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	shardLogs := make([]*logBuf, shards)
	nodes := make([]*clusterNode, shards)
	targets := make([]string, shards)
	for i := range nodes {
		shardLogs[i] = &logBuf{}
		nodes[i] = startLoggedNode(t, ring, i, shards, foldEvery, shardLogs[i])
		targets[i] = nodes[i].ts.URL
		defer nodes[i].stop()
	}
	gwLog := &logBuf{}
	gcfg := cluster.DefaultGatewayConfig()
	gcfg.Logger = log.New(gwLog, "", 0)
	gcfg.LogRequests = true
	// A generous window so the two concurrent requests below reliably
	// land in one micro-batch.
	gcfg.CoalesceWindow = 50 * time.Millisecond
	g, err := cluster.NewGateway(gcfg, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	client := gw.Client()

	post := func(id string) *http.Response {
		t.Helper()
		body := strings.NewReader(`{"tags":["pop","music"],"top":3}`)
		req, err := http.NewRequest(http.MethodPost, gw.URL+"/v1/predict", body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(obs.TraceHeader, id)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Two concurrent predicts with distinct ids: the coalescer merges
	// them into one fan-out, so the shard-bound header must carry both.
	idA, idB := "trace-e2e-aaaa", "trace-e2e-bbbb"
	var wg sync.WaitGroup
	for _, id := range []string{idA, idB} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp := post(id)
			defer func() { _ = resp.Body.Close() }()
			_, _ = io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("predict %s: status %d", id, resp.StatusCode)
			}
			if got := resp.Header.Get(obs.TraceHeader); got != id {
				t.Errorf("predict %s: response %s = %q, want the id echoed", id, obs.TraceHeader, got)
			}
		}(id)
	}
	wg.Wait()

	if gwText := gwLog.String(); !strings.Contains(gwText, "trace="+idA) || !strings.Contains(gwText, "trace="+idB) {
		t.Errorf("gateway access log missing a trace id:\n%s", gwText)
	}
	for i, sl := range shardLogs {
		text := sl.String()
		if !strings.Contains(text, idA) || !strings.Contains(text, idB) {
			t.Errorf("shard %d access log missing a member trace id (coalesced batch must carry both):\n%s", i, text)
		}
	}

	// A malformed error still echoes the id — in the header AND the
	// JSON envelope.
	resp := post("")
	raw, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	var envelope struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatalf("error body not JSON: %v: %s", err, raw)
	}
	// An empty inbound id is replaced with a generated one; it must be
	// present and consistent between header and body. Drive an actual
	// error with a bad payload to exercise WriteError.
	badBody := strings.NewReader(`{"tags":[],"batch":[]}`)
	req, err := http.NewRequest(http.MethodPost, gw.URL+"/v1/predict", badBody)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, "trace-e2e-err1")
	eresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	eraw, _ := io.ReadAll(eresp.Body)
	_ = eresp.Body.Close()
	if eresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty predict: status %d, want 400: %s", eresp.StatusCode, eraw)
	}
	if err := json.Unmarshal(eraw, &envelope); err != nil {
		t.Fatalf("error envelope not JSON: %v: %s", err, eraw)
	}
	if envelope.RequestID != "trace-e2e-err1" {
		t.Errorf("error envelope request_id = %q, want %q (body %s)", envelope.RequestID, "trace-e2e-err1", eraw)
	}
	if got := eresp.Header.Get(obs.TraceHeader); got != "trace-e2e-err1" {
		t.Errorf("error response %s = %q, want the id echoed", obs.TraceHeader, got)
	}
}
