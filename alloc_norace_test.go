//go:build !race

package viewstags_test

// raceEnabled mirrors the -race build flag: the allocation-budget gates
// skip under the race detector, whose instrumentation perturbs
// allocation counts the budgets were pinned without.
const raceEnabled = false
